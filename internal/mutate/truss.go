package mutate

import "repro/internal/graph"

// Incremental trussness maintenance. Influence of one edge mutation spreads
// only through shared triangles, and only below a level bound:
//
//   - inserting e can raise an edge's trussness by at most 1, and only for
//     edges of trussness < ub = 2+support(e) (a triangle through e supports
//     its edges at levels ≤ truss(e) ≤ ub);
//   - deleting e can lower an edge's trussness by at most 1, and only for
//     edges of trussness ≤ r = truss(e).
//
// The affected scope is therefore the set of below-bound edges reachable
// from the mutated edge (insertion) or from the edges of its triangles
// (deletion) via triangle adjacency, stopping at — but counting — boundary
// edges at or above the bound. The scope is re-peeled locally with the same
// bucket peeling as truss.Decompose, with every boundary edge pinned at its
// known trussness: it enters the buckets at support t−2, is never
// decremented, and still decrements its in-scope triangle partners when the
// peel passes its level — exactly how the global peel treats it.

// trussInsert maintains the per-edge trussness table for the already-applied
// edge (u,v). No-op when truss maintenance is skipped.
func (s *Session) trussInsert(u, v graph.NodeID) {
	if s.etruss == nil {
		return
	}
	e := EdgeOf(u, v)
	ub := int32(len(s.commonNeighbors(u, v))) + 2
	s.setTruss(e, 2) // placeholder so scope lookups see the edge; peel fixes it
	scope, boundary := s.trussScope([]Edge{e}, func(t int32) bool { return t < ub })
	s.localPeel(scope, boundary)
}

// trussRemove maintains the table for the already-removed edge (u,v). seeds
// are the edges of the triangles that went through (u,v), enumerated by the
// caller before the removal.
func (s *Session) trussRemove(u, v graph.NodeID, seeds []Edge) {
	if s.etruss == nil {
		return
	}
	e := EdgeOf(u, v)
	r, ok := s.etruss[e]
	if !ok {
		r = 2
	}
	s.deleteTruss(e)
	if len(seeds) == 0 {
		return
	}
	scope, boundary := s.trussScope(seeds, func(t int32) bool { return t <= r })
	s.localPeel(scope, boundary)
}

// trussScope collects the affected edge scope: starting from the seed edges,
// it BFSes over triangle adjacency in the overlay, expanding through edges
// whose current trussness satisfies inScope and recording the rest as
// pinned boundary. Seeds failing inScope become boundary themselves.
func (s *Session) trussScope(seeds []Edge, inScope func(int32) bool) (map[Edge]int, map[Edge]int32) {
	scope := make(map[Edge]int)
	boundary := make(map[Edge]int32)
	var queue []Edge
	classify := func(f Edge) {
		if _, ok := scope[f]; ok {
			return
		}
		if _, ok := boundary[f]; ok {
			return
		}
		t := s.etruss[f]
		if inScope(t) {
			scope[f] = len(scope)
			queue = append(queue, f)
		} else {
			boundary[f] = t
		}
	}
	for _, f := range seeds {
		classify(f)
	}
	for i := 0; i < len(queue); i++ {
		f := queue[i]
		for _, z := range s.commonNeighbors(f.U, f.V) {
			classify(EdgeOf(f.U, z))
			classify(EdgeOf(f.V, z))
		}
	}
	return scope, boundary
}

// localPeel recomputes the trussness of every scope edge by support peeling
// restricted to the scope, with boundary edges pinned at their known level.
// Triangle enumeration runs on the overlay, and every edge of a triangle
// containing a scope edge is itself scope or boundary (the BFS closure), so
// the peel sees exactly the triangles the global peel would.
func (s *Session) localPeel(scope map[Edge]int, boundary map[Edge]int32) {
	if len(scope) == 0 {
		return
	}
	total := len(scope) + len(boundary)
	edges := make([]Edge, total)
	pinned := make([]bool, total)
	cur := make([]int32, total)
	id := make(map[Edge]int, total)
	for f, i := range scope {
		edges[i] = f
		id[f] = i
	}
	i := len(scope)
	for f, t := range boundary {
		edges[i] = f
		pinned[i] = true
		if t >= 2 {
			cur[i] = t - 2
		}
		id[f] = i
		i++
	}
	maxSup := int32(0)
	for f, i := range scope {
		cur[i] = int32(len(s.commonNeighbors(f.U, f.V)))
		if cur[i] > maxSup {
			maxSup = cur[i]
		}
	}
	for i := len(scope); i < total; i++ {
		if cur[i] > maxSup {
			maxSup = cur[i]
		}
	}

	// Bucket peel, the same lazy-invalidation scheme as truss.Decompose.
	buckets := make([][]int32, maxSup+1)
	for i := 0; i < total; i++ {
		buckets[cur[i]] = append(buckets[cur[i]], int32(i))
	}
	removed := make([]bool, total)
	k := int32(0)
	for processed := 0; processed < total; processed++ {
		var e int32 = -1
		for sup := int32(0); sup <= maxSup && e < 0; sup++ {
			for len(buckets[sup]) > 0 {
				cand := buckets[sup][len(buckets[sup])-1]
				buckets[sup] = buckets[sup][:len(buckets[sup])-1]
				if removed[cand] || cur[cand] != sup {
					continue
				}
				e = cand
				break
			}
		}
		if e < 0 {
			break
		}
		if cur[e] > k {
			k = cur[e]
		}
		removed[e] = true
		f := edges[e]
		if !pinned[e] {
			if s.setTruss(f, k+2) {
				// The edge's trussness moved: its endpoints' node-level
				// index changes, so they join the affected region.
				s.structural[f.U] = struct{}{}
				s.structural[f.V] = struct{}{}
				s.trussDirty[f.U] = struct{}{}
				s.trussDirty[f.V] = struct{}{}
			}
		}
		for _, z := range s.commonNeighbors(f.U, f.V) {
			e1, ok1 := id[EdgeOf(f.U, z)]
			e2, ok2 := id[EdgeOf(f.V, z)]
			if !ok1 || !ok2 || removed[e1] || removed[e2] {
				continue
			}
			for _, t := range [2]int{e1, e2} {
				if !pinned[t] && cur[t] > k {
					cur[t]--
					buckets[cur[t]] = append(buckets[cur[t]], int32(t))
				}
			}
		}
	}
}

// setTruss writes t for edge f, recording the pre-batch value once, and
// reports whether the stored value changed.
func (s *Session) setTruss(f Edge, t int32) bool {
	old, existed := s.etruss[f]
	if _, logged := s.undo[f]; !logged {
		if existed {
			v := old
			s.undo[f] = &v
		} else {
			s.undo[f] = nil
		}
	}
	if existed && old == t {
		return false
	}
	s.etruss[f] = t
	return true
}

// deleteTruss removes edge f's entry, recording the pre-batch value once.
func (s *Session) deleteTruss(f Edge) {
	if _, logged := s.undo[f]; !logged {
		if old, ok := s.etruss[f]; ok {
			v := old
			s.undo[f] = &v
		} else {
			s.undo[f] = nil
		}
	}
	delete(s.etruss, f)
	s.trussDirty[f.U] = struct{}{}
	s.trussDirty[f.V] = struct{}{}
}
