// Package obs is the serving stack's observability substrate: lock-free
// latency histograms, a bounded trace ring, Prometheus text exposition
// helpers with a strictness checker, and an opt-in pprof listener.
//
// The central type is Histogram — a fixed-boundary, log-bucketed (HDR-style
// log-linear: power-of-two octaves split into 4 sub-buckets, ≤12.5% relative
// bucket width) concurrent histogram of non-negative integer values,
// typically latencies in nanoseconds. The record path is three atomic adds:
// no locks, no allocation, no branches on shared state — cheap enough to sit
// on every request and every stage of the hot path. Snapshot copies the
// counters into an immutable, mergeable value that estimates percentiles by
// linear interpolation inside the resolved bucket and carries the exact
// count and sum.
//
// Every Histogram shares one compile-time bucket layout, so snapshots merge
// across histograms, engines and processes (the seaload client aggregates
// worker histograms the same way the catalog aggregates per-dataset ones).
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values 0..subCount-1 get exact unit buckets; from there,
// each power-of-two octave [2^e, 2^(e+1)) splits into subCount sub-buckets
// of width 2^(e-subBits). maxShift bounds the top octave; values at or above
// 2^(maxShift+1) land in the overflow (+Inf) bucket. With subBits=2 and
// maxShift=49 the layout covers 1ns..~13d latencies and small counts (batch
// fan-out widths) in 197 buckets of ≤25% width (≤12.5% mean quantization
// error after interpolation).
const (
	subBits  = 2
	subCount = 1 << subBits // sub-buckets per octave
	maxShift = 49           // top octave exponent

	// NumBuckets is the per-histogram counter count: subCount unit buckets,
	// subCount per octave for octaves subBits..maxShift, plus the trailing
	// +Inf overflow bucket.
	NumBuckets = (maxShift-subBits+1)*subCount + subCount + 1

	// maxTracked is the first value that overflows into the +Inf bucket.
	maxTracked = uint64(1) << (maxShift + 1)
)

// bucketIndex maps a value to its bucket. Values < subCount are exact;
// larger values resolve to (octave, sub-bucket) by their top bits.
func bucketIndex(v uint64) int {
	if v >= maxTracked {
		return NumBuckets - 1
	}
	e := bits.Len64(v|1) - 1 // floor(log2 v), 0 for v==0
	if e < subBits {
		return int(v)
	}
	sub := int((v >> (uint(e) - subBits)) & (subCount - 1))
	return (e-subBits)*subCount + sub + subCount
}

// BucketUpper returns bucket i's inclusive upper bound: every value in the
// bucket is ≤ BucketUpper(i) and every value in bucket i+1 is > it. The
// overflow bucket returns MaxUint64.
func BucketUpper(i int) uint64 {
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	if i < subCount {
		return uint64(i)
	}
	j := i - subCount
	e := uint(subBits + j/subCount)
	sub := uint64(j % subCount)
	lower := uint64(1)<<e + sub<<(e-subBits)
	return lower + 1<<(e-subBits) - 1
}

// bucketLower returns bucket i's inclusive lower bound.
func bucketLower(i int) uint64 {
	if i == 0 {
		return 0
	}
	return BucketUpper(i-1) + 1
}

// Histogram is a concurrent fixed-boundary log-bucketed histogram. The zero
// value is ready to use; copying a non-zero Histogram is not (hold it by
// pointer or embed it in a heap-allocated struct).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one non-negative value (negative values clamp to 0). The
// record path is wait-free and allocation-free.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.buckets[bucketIndex(u)].Add(1)
	h.sum.Add(u)
	h.count.Add(1)
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// Snapshot copies the histogram into an immutable value. Concurrent with
// Observe the copy is weakly consistent bucket by bucket (count, sum and
// buckets may straddle a racing record by one), which is the usual and
// harmless histogram-scrape semantics; it never tears a single counter.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is an immutable point-in-time copy of a Histogram: per-bucket
// counts plus the exact observation count and sum. The zero value is an
// empty snapshot. Snapshots merge by addition and estimate quantiles by
// linear interpolation within the resolved bucket.
type Snapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge returns the bucket-wise sum of s and o — the histogram of the two
// underlying populations combined. All histograms share one layout, so any
// two snapshots merge.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded values,
// interpolating linearly inside the bucket the rank resolves to. An empty
// snapshot returns 0; ranks landing in the overflow bucket return its lower
// bound (the estimate saturates, it never invents a value).
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == NumBuckets-1 {
			if i == NumBuckets-1 {
				return float64(bucketLower(i))
			}
			lo, hi := float64(bucketLower(i)), float64(BucketUpper(i))+1
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return 0
}

// Mean returns the exact mean of the recorded values (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the inclusive upper bound of the highest non-empty bucket —
// an upper estimate of the true maximum (0 when empty).
func (s Snapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// Summary is the JSON-friendly digest of a latency snapshot, in
// microseconds: the flat shape /stats and seaload records use.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

// Summary digests a nanosecond-valued snapshot into microsecond percentiles.
func (s Snapshot) Summary() Summary {
	const us = 1e3
	return Summary{
		Count:  s.Count,
		MeanUS: s.Mean() / us,
		P50US:  s.Quantile(0.50) / us,
		P90US:  s.Quantile(0.90) / us,
		P99US:  s.Quantile(0.99) / us,
		P999US: s.Quantile(0.999) / us,
		MaxUS:  float64(s.Max()) / us,
	}
}
