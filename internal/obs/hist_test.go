package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every representable value must land in a bucket whose [lower, upper]
	// range contains it, and bucket bounds must tile the axis exactly.
	vals := []uint64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 100, 1000, 1e6, 1e9, 1e12, maxTracked - 1, maxTracked, math.MaxUint64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if v < maxTracked {
			if lo, hi := bucketLower(i), BucketUpper(i); v < lo || v > hi {
				t.Fatalf("value %d in bucket %d [%d, %d]", v, i, lo, hi)
			}
		} else if i != NumBuckets-1 {
			t.Fatalf("value %d should overflow, got bucket %d", v, i)
		}
	}
	for i := 1; i < NumBuckets-1; i++ {
		if bucketLower(i) != BucketUpper(i-1)+1 {
			t.Fatalf("bucket %d lower %d does not abut bucket %d upper %d",
				i, bucketLower(i), i-1, BucketUpper(i-1))
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < subCount; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for i := 0; i < subCount; i++ {
		if s.Buckets[i] != 1 {
			t.Fatalf("small value %d not in its unit bucket: %v", i, s.Buckets[:subCount])
		}
	}
	if s.Count != subCount || s.Sum != 0+1+2+3 {
		t.Fatalf("count %d sum %d", s.Count, s.Sum)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Sum != 0 {
		t.Fatalf("negative observation not clamped to 0: %+v", s)
	}
}

// TestQuantileAccuracy checks interpolated quantiles against a sorted
// reference on distributions shaped like real latency populations. The
// layout guarantees ≤25% bucket width, so interpolated estimates must stay
// within 15% relative error of the true order statistic.
func TestQuantileAccuracy(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform":   func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exp":       func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 200_000) },
		"lognormal": func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*1.5 + 11)) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(5) == 0 {
				return 5_000_000 + r.Int63n(1_000_000) // slow mode: cache misses
			}
			return 50_000 + r.Int63n(20_000) // fast mode: cache hits
		},
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for name, gen := range distributions {
		r := rand.New(rand.NewSource(42))
		var h Histogram
		ref := make([]int64, 0, 100_000)
		for i := 0; i < 100_000; i++ {
			v := gen(r)
			h.Observe(v)
			ref = append(ref, v)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		s := h.Snapshot()
		for _, q := range quantiles {
			got := s.Quantile(q)
			idx := int(q*float64(len(ref))) - 1
			if idx < 0 {
				idx = 0
			}
			want := float64(ref[idx])
			relErr := math.Abs(got-want) / want
			if relErr > 0.15 {
				t.Errorf("%s p%g: histogram %.0f vs reference %.0f (rel err %.3f)",
					name, q*100, got, want, relErr)
			}
		}
		if s.Count != 100_000 {
			t.Fatalf("%s: count %d", name, s.Count)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Snapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
	var h Histogram
	h.Observe(math.MaxInt64) // overflow bucket
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != float64(bucketLower(NumBuckets-1)) {
		t.Fatalf("overflow quantile %g, want saturation at %d", got, bucketLower(NumBuckets-1))
	}
	if s.Max() != math.MaxUint64 {
		t.Fatalf("overflow max %d", s.Max())
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	r := rand.New(rand.NewSource(7))
	var whole Histogram
	for i := 0; i < 10_000; i++ {
		v := r.Int63n(1_000_000)
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := whole.Snapshot()
	if merged != want {
		t.Fatal("merged snapshot differs from whole-population histogram")
	}
}

// TestConcurrentRecordSnapshot is the race-detector workout: writers record
// while readers snapshot and quantile. Run under -race it proves the
// lock-free claim; the final barrier checks no observation was lost.
func TestConcurrentRecordSnapshot(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ { // concurrent snapshotters
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := h.Snapshot()
					_ = s.Quantile(0.99)
					_ = s.Summary()
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(seed int64) {
			defer ww.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(r.Int63n(1_000_000))
			}
		}(int64(w))
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("lost observations: count %d, want %d", s.Count, writers*perWriter)
	}
	var sum uint64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket total %d != count %d", sum, s.Count)
	}
}

// TestObserveAllocs is the 0 allocs/op guard on the record path — the
// property that lets a histogram sit on every stage of every request.
func TestObserveAllocs(t *testing.T) {
	h := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123_456) }); n != 0 {
		t.Fatalf("Observe allocates %v/op, want 0", n)
	}
	start := time.Now()
	if n := testing.AllocsPerRun(1000, func() { h.ObserveSince(start) }); n != 0 {
		t.Fatalf("ObserveSince allocates %v/op, want 0", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = v*6364136223846793005 + 1442695040888963407 // LCG walk across buckets
			if v < 0 {
				v = -v
			}
		}
	})
}

func TestRing(t *testing.T) {
	r := NewRing[int](4)
	if got := r.Last(10); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	for i := 1; i <= 6; i++ {
		r.Add(i)
	}
	if r.Len() != 4 || r.Seq() != 6 {
		t.Fatalf("len %d seq %d", r.Len(), r.Seq())
	}
	if got := r.Last(2); got[0] != 6 || got[1] != 5 {
		t.Fatalf("Last(2) = %v, want [6 5]", got)
	}
	got := r.Last(0) // everything, newest first
	want := []int{6, 5, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Last(0) = %v, want %v", got, want)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing[uint64](64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Add(uint64(i))
				if i%64 == 0 {
					_ = r.Last(8)
				}
			}
		}()
	}
	wg.Wait()
	if r.Seq() != 4*5000 {
		t.Fatalf("seq %d", r.Seq())
	}
}
