package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves net/http/pprof on its own listener and mux, so profiling
// never shares a port (or a handler namespace) with the serving endpoints.
// It returns the bound address — pass "127.0.0.1:0" to let the kernel pick a
// loopback port. The listener runs until process exit; profiling is a
// debugging surface, not a lifecycle-managed one.
//
// Recipe: seaserve -pprof 127.0.0.1:6060, then
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
