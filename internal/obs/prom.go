package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4) helpers. WriteHistogram renders
// a Snapshot as the standard cumulative `_bucket{le=...}` / `_sum` /
// `_count` triple; EscapeLabel implements the exposition-format escaping
// rules exactly (only `\`, `"` and newline are escaped — fmt's %q escapes
// more and produces sequences strict parsers reject); CheckExposition is the
// strictness checker the exposition tests run over full /metrics bodies.

// Label is one Prometheus label pair. Values are escaped at write time.
type Label struct {
	Name  string
	Value string
}

// EscapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline only. Anything else — tabs, control bytes, UTF-8
// — passes through verbatim, as the format requires.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes stay raw).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WriteHistogramHeader writes the # HELP / # TYPE preamble for a histogram
// family. Call once per family, before the per-labelset WriteHistogram
// calls.
func WriteHistogramHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, escapeHelp(help), name)
}

// exposeEvery thins the bucket layout for exposition: one `le` boundary per
// octave (the octave-top sub-bucket) instead of all four, cutting the series
// count 4× while keeping full resolution in /stats and seaload, which
// quantile over the unthinned snapshot.
const exposeEvery = subCount

// WriteHistogram writes one labelset of a histogram family: cumulative
// `_bucket{le="..."}` lines at octave boundaries plus `+Inf`, then `_sum`
// and `_count`. Values are scaled by scale before exposition — pass 1e-9 to
// expose nanosecond observations as the conventional seconds, 1 for
// unit-less histograms (fan-out widths). Boundaries are inclusive upper
// bounds of integer-valued buckets, so the cumulative counts are exact.
func WriteHistogram(w io.Writer, name string, labels []Label, s Snapshot, scale float64) {
	base := formatLabels(labels)
	var cum uint64
	for i := 0; i < NumBuckets-1; i++ {
		cum += s.Buckets[i]
		if i%exposeEvery != exposeEvery-1 {
			continue
		}
		le := float64(BucketUpper(i)) * scale
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", name, base, formatFloat(le), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, base, s.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, wrapLabels(labels), formatFloat(float64(s.Sum)*scale))
	fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(labels), s.Count)
}

// formatLabels renders `name="escaped",` pairs with a trailing comma, ready
// to prepend to the le label.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(l.Value))
		b.WriteString(`",`)
	}
	return b.String()
}

// wrapLabels renders `{name="escaped",...}` or "" when empty.
func wrapLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := formatLabels(labels)
	return "{" + strings.TrimSuffix(s, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// CheckExposition validates a full Prometheus text-format body the way a
// strict scraper would, returning the first violation:
//
//   - every sample's family has # HELP and # TYPE lines before its first
//     sample, with a known type;
//   - metric and label names match the spec grammar; label values use only
//     the three legal escapes;
//   - sample values parse as floats; no (name, labelset) appears twice;
//   - histogram families have `le` on every _bucket, cumulative counts that
//     never decrease, a `+Inf` bucket equal to _count, and a _sum.
//
// It exists because the seed /metrics handlers drifted from the spec (bare
// series without HELP/TYPE, %q-escaped labels); the exposition tests run
// every endpoint's full output through it.
func CheckExposition(body []byte) error {
	type hist struct {
		lastLE     float64
		lastCum    uint64
		infCount   uint64
		hasInf     bool
		hasSum     bool
		countValue uint64
		hasCount   bool
	}
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	sampleSeen := map[string]bool{}
	hists := map[string]*hist{}

	lines := strings.Split(string(body), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch kind {
			case "HELP":
				if helpSeen[name] {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helpSeen[name] = true
			case "TYPE":
				if _, dup := typeSeen[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				typeSeen[name] = rest
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyOf(name, typeSeen)
		if !helpSeen[fam] {
			return fmt.Errorf("line %d: sample %s has no # HELP %s before it", lineNo, name, fam)
		}
		typ, ok := typeSeen[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no # TYPE %s before it", lineNo, name, fam)
		}
		key := name + "|" + canonicalLabels(labels)
		if sampleSeen[key] {
			return fmt.Errorf("line %d: duplicate sample %s{%s}", lineNo, name, canonicalLabels(labels))
		}
		sampleSeen[key] = true

		if typ != "histogram" {
			continue
		}
		// Histogram invariants, grouped by family + labels-without-le.
		nonLE := make([]Label, 0, len(labels))
		var le string
		var hasLE bool
		for _, l := range labels {
			if l.Name == "le" {
				le, hasLE = l.Value, true
				continue
			}
			nonLE = append(nonLE, l)
		}
		hkey := fam + "|" + canonicalLabels(nonLE)
		h := hists[hkey]
		if h == nil {
			h = &hist{lastLE: math.Inf(-1)}
			hists[hkey] = h
		}
		switch {
		case name == fam+"_bucket":
			if !hasLE {
				return fmt.Errorf("line %d: %s without le label", lineNo, name)
			}
			cum := uint64(value)
			if le == "+Inf" {
				h.hasInf, h.infCount = true, cum
				break
			}
			lv, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
			}
			if lv <= h.lastLE {
				return fmt.Errorf("line %d: le %q not increasing in %s", lineNo, le, hkey)
			}
			if cum < h.lastCum {
				return fmt.Errorf("line %d: cumulative bucket count decreased in %s", lineNo, hkey)
			}
			h.lastLE, h.lastCum = lv, cum
		case name == fam+"_sum":
			h.hasSum = true
		case name == fam+"_count":
			h.hasCount, h.countValue = true, uint64(value)
		default:
			return fmt.Errorf("line %d: %s is not a histogram series of %s", lineNo, name, fam)
		}
	}

	for hkey, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", hkey)
		}
		if !h.hasSum {
			return fmt.Errorf("histogram %s has no _sum", hkey)
		}
		if !h.hasCount {
			return fmt.Errorf("histogram %s has no _count", hkey)
		}
		if h.infCount != h.countValue {
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", hkey, h.infCount, h.countValue)
		}
		if h.lastCum > h.infCount {
			return fmt.Errorf("histogram %s: finite bucket %d exceeds +Inf %d", hkey, h.lastCum, h.infCount)
		}
	}
	return nil
}

// familyOf maps a sample name to its metric family: histogram series
// (`x_bucket`, `x_sum`, `x_count`) fold into `x` when `x` is declared a
// histogram; everything else is its own family.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind, name = fields[1], fields[2]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	if !metricNameRe.MatchString(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q in %s", name, kind)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	if kind == "TYPE" && rest == "" {
		return "", "", "", fmt.Errorf("TYPE %s missing a type", name)
	}
	return kind, name, rest, nil
}

// parseSample parses `name{l1="v",l2="v"} value` (labels optional).
func parseSample(line string) (string, []Label, float64, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []Label
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, fmt.Errorf("in %s: %v", name, err)
		}
	}
	rest = strings.TrimLeft(rest, " ")
	// Value, optionally followed by a timestamp.
	valStr := rest
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		valStr = rest[:j]
	}
	val, err := parseValue(valStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("in %s: %v", name, err)
	}
	return name, labels, val, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// parseLabels consumes a `{...}` label block, validating names and the
// escape discipline inside quoted values.
func parseLabels(s string) ([]Label, string, error) {
	s = s[1:] // consume '{'
	var labels []Label
	for {
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		value, rest, err := parseQuoted(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %v", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		s = rest
		if s != "" && s[0] == ',' {
			s = s[1:]
		}
	}
}

// parseQuoted consumes a double-quoted string allowing exactly the three
// exposition-format escapes, returning the decoded value and the remainder.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("illegal escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// canonicalLabels renders labels sorted by name, for duplicate detection.
func canonicalLabels(labels []Label) string {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		fmt.Fprintf(&b, "%s=%q,", l.Name, l.Value)
	}
	return b.String()
}
