package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestEscapeLabel(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`qu"ote`:       `qu\"ote`,
		"new\nline":    `new\nline`,
		"tab\tstays":   "tab\tstays", // %q would emit \t, which parsers reject
		"utf8 — stays": "utf8 — stays",
	}
	for in, want := range cases {
		if got := EscapeLabel(in); got != want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteHistogramIsValidExposition(t *testing.T) {
	var h Histogram
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		h.Observe(r.Int63n(5_000_000))
	}
	var buf bytes.Buffer
	WriteHistogramHeader(&buf, "sea_test_latency_seconds", "test latency")
	WriteHistogram(&buf, "sea_test_latency_seconds",
		[]Label{{"graph", `we"ird\name`}, {"stage", "search"}}, h.Snapshot(), 1e-9)
	WriteHistogram(&buf, "sea_test_latency_seconds",
		[]Label{{"graph", "fb"}, {"stage", "distance"}}, Snapshot{}, 1e-9)
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("WriteHistogram output rejected: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`le="+Inf"`, "_sum{", "_count{", "# TYPE sea_test_latency_seconds histogram",
		`graph="we\"ird\\name"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteHistogramNoLabels(t *testing.T) {
	var h Histogram
	h.Observe(42)
	var buf bytes.Buffer
	WriteHistogramHeader(&buf, "client_latency_seconds", "client side")
	WriteHistogram(&buf, "client_latency_seconds", nil, h.Snapshot(), 1e-9)
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("no-label exposition rejected: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "client_latency_seconds_sum ") {
		t.Fatalf("bare _sum missing:\n%s", buf.String())
	}
}

func TestWriteHistogramCumulative(t *testing.T) {
	// The cumulative invariant: each bucket line ≥ the previous, +Inf == count.
	var h Histogram
	for i := int64(1); i <= 1_000_000; i *= 3 {
		h.Observe(i)
	}
	var buf bytes.Buffer
	WriteHistogram(&buf, "m", nil, h.Snapshot(), 1)
	var prev, inf, count uint64
	var sawInf bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var cum uint64
		switch {
		case strings.Contains(line, `le="+Inf"`):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &inf)
			sawInf = true
		case strings.HasPrefix(line, "m_bucket"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum)
			if cum < prev {
				t.Fatalf("cumulative count decreased: %s", line)
			}
			prev = cum
		case strings.HasPrefix(line, "m_count"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count)
		}
	}
	if !sawInf || inf != count || count == 0 {
		t.Fatalf("inf %d count %d sawInf %v", inf, count, sawInf)
	}
}

func TestCheckExpositionAccepts(t *testing.T) {
	good := `# HELP sea_queries_total queries served
# TYPE sea_queries_total counter
sea_queries_total{graph="fb"} 12
sea_queries_total{graph="tw"} 0
# HELP up node liveness
# TYPE up gauge
up 1
`
	if err := CheckExposition([]byte(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"missing TYPE": "# HELP x y\nx 1\n",
		"missing HELP": "# TYPE x counter\nx 1\n",
		"bad type":     "# HELP x y\n# TYPE x speedometer\nx 1\n",
		"bad name":     "# HELP 2x y\n# TYPE 2x counter\n2x 1\n",
		"illegal escape": "# HELP x y\n# TYPE x counter\n" +
			"x{l=\"a\\tb\"} 1\n",
		"unquoted label": "# HELP x y\n# TYPE x counter\nx{l=v} 1\n",
		"duplicate sample": "# HELP x y\n# TYPE x counter\n" +
			"x{l=\"a\"} 1\nx{l=\"a\"} 2\n",
		"bad value": "# HELP x y\n# TYPE x counter\nx fast\n",
		"histogram without inf": "# HELP h y\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram inf != count": "# HELP h y\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"histogram decreasing": "# HELP h y\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram no sum": "# HELP h y\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, body := range cases {
		if err := CheckExposition([]byte(body)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, body)
		}
	}
}

func TestStartPprof(t *testing.T) {
	addr, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartPprof: %v", err)
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("pprof bound to %s, want loopback", addr)
	}
}
