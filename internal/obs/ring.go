package obs

import "sync"

// Ring is a bounded, concurrency-safe ring buffer holding the most recent N
// values — the storage behind the request-trace endpoints. Writes overwrite
// the oldest entry once full; Last returns newest-first copies. The fixed
// footprint means tracing can stay always-on: the ring never grows and never
// blocks writers on readers for longer than a copy.
type Ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	next int    // next write position
	n    int    // number of valid entries (≤ len(buf))
	seq  uint64 // total writes ever, for loss-free "did I miss any" checks
}

// NewRing returns a ring holding the most recent size entries (size < 1 is
// clamped to 1).
func NewRing[T any](size int) *Ring[T] {
	if size < 1 {
		size = 1
	}
	return &Ring[T]{buf: make([]T, size)}
}

// Add appends v, overwriting the oldest entry when full.
func (r *Ring[T]) Add(v T) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.seq++
	r.mu.Unlock()
}

// Last returns up to n entries, newest first. n < 1 or n > stored returns
// everything stored. The result is a copy; callers may retain it.
func (r *Ring[T]) Last(n int) []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 || n > r.n {
		n = r.n
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		// next-1 is the newest entry; walk backwards.
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out[i] = r.buf[idx]
	}
	return out
}

// Len returns the number of stored entries.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Seq returns the total number of Adds ever, including overwritten ones.
func (r *Ring[T]) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
