// Package query defines the unified, method-agnostic community-search
// request type and the Searcher registry over it. The paper's experimental
// story (§VII) is one query answered by many methods — SEA vs. the exact
// branch-and-bound vs. the ACQ/LocATC/VAC/EVAC baselines — and this package
// is that story as an API: a single graph-independent Request describes the
// query, a Method names the solver, and every solver answers through the
// same Searcher interface with the same Outcome shape, so the library, the
// Engine, the CLI and the HTTP server all speak one spec.
//
// Execution is context-aware end to end: every method's hot loop polls the
// context, so a deadline or client disconnect genuinely stops work instead
// of merely abandoning it. Interrupted and budget-exhausted searches return
// the best community found so far together with a classifying error (see
// internal/cserr for the taxonomy).
package query

import (
	"context"
	"fmt"

	"repro/internal/attr"
	"repro/internal/baselines"
	"repro/internal/cserr"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/sea"
	"repro/internal/stats"
	"repro/internal/truss"
)

// Method names a community-search solver. The zero value is MethodSEA.
type Method int

// Registered methods.
const (
	MethodSEA        Method = iota // SEA sampling-estimation search (§V)
	MethodExact                    // exact branch-and-bound (§IV)
	MethodACQ                      // shared-attribute baseline (Fang et al., PVLDB'16)
	MethodLocATC                   // attribute-coverage local search (Huang & Lakshmanan, PVLDB'17)
	MethodVAC                      // approximate min-max distance baseline (Liu et al., ICDE'20)
	MethodEVAC                     // exact min-max distance baseline with a state budget
	MethodStructural               // plain maximal connected k-core / k-truss, attributes ignored
	numMethods
)

var methodNames = [numMethods]string{
	MethodSEA:        "sea",
	MethodExact:      "exact",
	MethodACQ:        "acq",
	MethodLocATC:     "locatc",
	MethodVAC:        "vac",
	MethodEVAC:       "evac",
	MethodStructural: "structural",
}

// String returns the method's registry name (the wire form).
func (m Method) String() string {
	if m >= 0 && m < numMethods {
		return methodNames[m]
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Valid reports whether m names a registered method.
func (m Method) Valid() bool { return m >= 0 && m < numMethods }

// MarshalText renders the method's registry name, so a Method round-trips
// through JSON.
func (m Method) MarshalText() ([]byte, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("query: unknown method %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText parses a registry name; the empty string selects MethodSEA.
func (m *Method) UnmarshalText(text []byte) error {
	parsed, err := ParseMethod(string(text))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseMethod resolves a registry name ("sea", "exact", "acq", "locatc",
// "vac", "evac", "structural") to its Method. The empty string selects
// MethodSEA so zero-valued wire requests keep the paper's primary method.
func ParseMethod(name string) (Method, error) {
	if name == "" {
		return MethodSEA, nil
	}
	for m, n := range methodNames {
		if n == name {
			return Method(m), nil
		}
	}
	return 0, cserr.Invalidf("unknown method %q (want one of %v)", name, MethodNames())
}

// Methods returns every registered method in registry order.
func Methods() []Method {
	out := make([]Method, numMethods)
	for i := range out {
		out[i] = Method(i)
	}
	return out
}

// MethodNames returns the registry names of every method, in registry order.
func MethodNames() []string {
	return append([]string(nil), methodNames[:]...)
}

// Request is the graph-independent community-search query spec shared by
// every method, the Engine, the CLI and the HTTP server: which node, which
// solver, which structural model, and the accuracy/size/budget parameters.
// All fields are value-typed, so a Request is comparable and serves directly
// as a cache key; zero-valued fields mean "use the paper's default" and are
// resolved by WithDefaults. The JSON form is the HTTP wire format.
type Request struct {
	Query  graph.NodeID `json:"q"`
	Method Method       `json:"method,omitempty"`
	K      int          `json:"k,omitempty"`
	Model  sea.Model    `json:"model,omitempty"`

	// Graph optionally names the dataset the request targets, for servers
	// that mount several (internal/catalog); the empty string means the
	// default dataset. It is routing metadata, not a search parameter: the
	// library entry points ignore it and an Engine — which serves exactly one
	// graph — canonicalizes it away before caching.
	Graph string `json:"graph,omitempty"`

	// Accuracy parameters (SEA): relative error bound e and confidence 1−α.
	ErrorBound float64 `json:"e,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`

	// Size bounds (§VI-B, SEA only): when SizeHi > 0 the community has
	// between SizeLo and SizeHi members.
	SizeLo int `json:"size_lo,omitempty"`
	SizeHi int `json:"size_hi,omitempty"`

	// Seed drives SEA's random sampling. Unlike the other parameters it has
	// no zero-means-default resolution — 0 is itself a valid seed, preserved
	// as-is so legacy Options with Seed 0 convert faithfully. DefaultRequest
	// sets 1, the paper's default.
	Seed     int64 `json:"seed,omitempty"`
	NoRefine bool  `json:"no_refine,omitempty"`

	// MaxStates bounds the exact and EVAC search trees; the truncated
	// best-so-far is returned with ErrBudgetExhausted. For exact, 0 means
	// unlimited (the historical contract); for EVAC — whose tree explodes on
	// any non-trivial graph — 0 selects DefaultEVACStates.
	MaxStates int64 `json:"max_states,omitempty"`

	// Advanced SEA sampling knobs; zero values select the paper's defaults.
	Lambda    float64         `json:"lambda,omitempty"`
	Eps       float64         `json:"eps,omitempty"`
	Beta      float64         `json:"beta,omitempty"`
	MaxRounds int             `json:"max_rounds,omitempty"`
	BLB       stats.BLBConfig `json:"-"`
}

// DefaultRequest returns a Request for query node q with the paper's default
// parameters (§VII-A) fully spelled out: method SEA, k=4, k-core model,
// e=2%, 95% confidence, seed 1.
func DefaultRequest(q graph.NodeID) Request {
	return Request{Query: q, Seed: 1}.WithDefaults()
}

// WithDefaults resolves every zero-valued parameter to the paper's default
// (Seed excepted — 0 is a valid seed) and neutralizes parameters the chosen
// method ignores, returning the canonical Request. Engine caching and
// coalescing key on the canonical form, so a sparse wire request, its
// spelled-out equivalent, and variants differing only in ignored knobs all
// hit the same cache entry.
func (r Request) WithDefaults() Request {
	d := sea.DefaultOptions()
	if r.K == 0 {
		r.K = d.K
	}
	if r.ErrorBound == 0 {
		r.ErrorBound = d.ErrorBound
	}
	if r.Confidence == 0 {
		r.Confidence = d.Confidence
	}
	if r.Lambda == 0 {
		r.Lambda = d.Lambda
	}
	if r.Eps == 0 {
		r.Eps = d.Eps
	}
	if r.Beta == 0 {
		r.Beta = d.Beta
	}
	if r.MaxRounds == 0 {
		r.MaxRounds = d.MaxRounds
	}
	if r.BLB == (stats.BLBConfig{}) {
		r.BLB = d.BLB
	}
	// Neutralize method-irrelevant parameters (to the defaults, keeping the
	// Request valid) so they cannot split cache entries or defeat
	// coalescing for requests that are semantically identical.
	if r.Method != MethodSEA && r.Method.Valid() {
		r.ErrorBound, r.Confidence = d.ErrorBound, d.Confidence
		r.Lambda, r.Eps, r.Beta = d.Lambda, d.Eps, d.Beta
		r.MaxRounds, r.BLB = d.MaxRounds, d.BLB
		r.Seed, r.NoRefine = 0, false
	}
	if r.Method != MethodExact && r.Method != MethodEVAC {
		r.MaxStates = 0
	}
	return r
}

// Validate reports request errors after default resolution; every error
// wraps cserr.ErrInvalidRequest. Method/parameter mismatches that would
// silently change meaning (size bounds on a method that ignores them, the
// k-truss model under the k-core-only exact solver) are rejected rather
// than ignored.
func (r Request) Validate() error {
	r = r.WithDefaults()
	if r.Query < 0 {
		return cserr.Invalidf("query node %d negative", r.Query)
	}
	if !r.Method.Valid() {
		return cserr.Invalidf("unknown method %d", int(r.Method))
	}
	if r.Model != sea.KCore && r.Model != sea.KTruss {
		return cserr.Invalidf("unknown model %d", int(r.Model))
	}
	if r.Method == MethodExact && r.Model == sea.KTruss {
		return cserr.Invalidf("method exact supports only the k-core model")
	}
	if r.SizeHi != 0 || r.SizeLo != 0 {
		if r.Method != MethodSEA {
			return cserr.Invalidf("size bounds are only supported by method sea, not %s", r.Method)
		}
	}
	if r.MaxStates < 0 {
		return cserr.Invalidf("MaxStates %d negative", r.MaxStates)
	}
	// The shared structural/accuracy parameters reuse the SEA validation.
	return r.Options().Validate()
}

// Options projects the Request onto sea.Options. The projection is lossless
// in both directions: FromOptions(q, r.Options()) with method SEA equals
// r.WithDefaults() for any valid SEA request.
func (r Request) Options() sea.Options {
	r = r.WithDefaults()
	return sea.Options{
		K:          r.K,
		ErrorBound: r.ErrorBound,
		Confidence: r.Confidence,
		Lambda:     r.Lambda,
		Eps:        r.Eps,
		Beta:       r.Beta,
		Model:      r.Model,
		SizeLo:     r.SizeLo,
		SizeHi:     r.SizeHi,
		BLB:        r.BLB,
		MaxRounds:  r.MaxRounds,
		NoRefine:   r.NoRefine,
		Seed:       r.Seed,
	}
}

// FromOptions lifts a legacy (query, sea.Options) pair into a SEA Request,
// preserving every field so cache keys and results match the old entry
// points bit for bit.
func FromOptions(q graph.NodeID, opts sea.Options) Request {
	return Request{
		Query:      q,
		Method:     MethodSEA,
		K:          opts.K,
		Model:      opts.Model,
		ErrorBound: opts.ErrorBound,
		Confidence: opts.Confidence,
		SizeLo:     opts.SizeLo,
		SizeHi:     opts.SizeHi,
		Seed:       opts.Seed,
		NoRefine:   opts.NoRefine,
		Lambda:     opts.Lambda,
		Eps:        opts.Eps,
		Beta:       opts.Beta,
		MaxRounds:  opts.MaxRounds,
		BLB:        opts.BLB,
	}
}

// Outcome is the method-agnostic result of one Request. Community and Delta
// are populated for every method (Delta is always the paper's q-centric
// attribute distance, so outcomes of different methods are directly
// comparable); the remaining fields carry method-specific detail.
type Outcome struct {
	Method    Method         `json:"method"`
	Community []graph.NodeID `json:"community"`
	// Delta is the q-centric attribute distance δ of the community (§II),
	// recomputed identically for every method.
	Delta float64 `json:"delta"`
	// CI and Satisfied report SEA's confidence interval and whether the
	// Theorem-11 stopping rule was achieved; zero for other methods.
	CI        stats.CI `json:"ci"`
	Satisfied bool     `json:"satisfied"`
	// States counts search-tree states visited by exact; 0 for others.
	States int64 `json:"states,omitempty"`
	// Truncated marks a best-so-far community from a search cut short by a
	// state budget or a cancelled context.
	Truncated bool `json:"truncated,omitempty"`
	// SEA and Exact carry the full method-specific traces when applicable.
	SEA   *sea.Result   `json:"-"`
	Exact *exact.Result `json:"-"`
}

// Searcher answers Requests with one fixed method on any graph backing.
// Obtain one from NewSearcher; implementations are stateless and safe for
// concurrent use. Search builds the attribute metric itself (γ=0.5, the
// paper's default); use Run to share a precomputed metric or f(·,q) vector.
type Searcher interface {
	// Method returns the solver this searcher routes to.
	Method() Method
	// Search answers req on g. The request's Method field is ignored in
	// favor of the searcher's own, so one Request can be replayed across
	// several searchers for comparison.
	Search(ctx context.Context, g graph.Store, req Request) (*Outcome, error)
}

// DefaultGamma is the attribute-metric balance factor used when a searcher
// builds its own metric (the paper's default γ).
const DefaultGamma = 0.5

// NewSearcher returns the Searcher for a registered method.
func NewSearcher(m Method) (Searcher, error) {
	if !m.Valid() {
		return nil, cserr.Invalidf("unknown method %d", int(m))
	}
	return methodSearcher{m}, nil
}

type methodSearcher struct{ m Method }

func (s methodSearcher) Method() Method { return s.m }

func (s methodSearcher) Search(ctx context.Context, g graph.Store, req Request) (*Outcome, error) {
	req.Method = s.m
	return Run(ctx, g, nil, nil, req)
}

// Execute answers req on g with the method req names, building the default
// attribute metric. It is the one-call form of NewSearcher + Search.
func Execute(ctx context.Context, g graph.Store, req Request) (*Outcome, error) {
	return Run(ctx, g, nil, nil, req)
}

// Run answers req on g, reusing a precomputed attribute metric m and f(·,q)
// vector dist when the caller has them (either may be nil: a nil m builds
// the DefaultGamma metric, a nil dist is computed from m on demand). This is
// the entry point the Engine drives with its shared metric and distance
// cache; g may be any graph.Store backing — heap CSR, mapped snapshot or
// compressed adjacency — and the Outcome is byte-identical across them. On
// interruption or budget exhaustion the Outcome carries the best community
// found so far (Truncated set) alongside the classifying error.
func Run(ctx context.Context, g graph.Store, m *attr.Metric, dist []float64, req Request) (*Outcome, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, cserr.Invalidf("nil graph")
	}
	if int(req.Query) >= g.NumNodes() {
		return nil, cserr.Invalidf("query node %d outside graph [0,%d)", req.Query, g.NumNodes())
	}
	env := &env{ctx: ctx, g: g, q: req.Query, m: m, dist: dist}
	out, err := executors[req.Method](env, req)
	if out != nil {
		out.Method = req.Method
		if out.Community != nil {
			out.Delta = attr.Delta(env.distVec(), out.Community, req.Query)
		}
	}
	return out, err
}

// env bundles the per-execution state shared by the method executors: the
// graph, the attribute metric, and the f(·,q) vector, the latter two built
// lazily so attribute-free methods (ACQ, LocATC, structural) only pay for
// them when an Outcome needs its Delta.
type env struct {
	ctx  context.Context
	g    graph.Store
	q    graph.NodeID
	m    *attr.Metric
	dist []float64
}

// metric returns the attribute metric, building the DefaultGamma one on
// first use when the caller did not supply one.
func (e *env) metric() *attr.Metric {
	if e.m == nil {
		m, err := attr.NewMetric(e.g, DefaultGamma)
		if err != nil {
			// NewMetric only rejects out-of-range gamma; DefaultGamma is valid.
			panic(err)
		}
		e.m = m
	}
	return e.m
}

// distVec returns the f(·,q) vector, computing it from the metric on first use.
func (e *env) distVec() []float64 {
	if e.dist == nil {
		e.dist = e.metric().QueryDist(e.q)
	}
	return e.dist
}

// executor answers one canonical (defaults-resolved, validated) Request.
type executor func(*env, Request) (*Outcome, error)

// executors is the method registry: one executor per Method, indexed by the
// enum. Adding a method means adding an enum value, a name, and a row here.
var executors = [numMethods]executor{
	MethodSEA:        runSEA,
	MethodExact:      runExact,
	MethodACQ:        runACQ,
	MethodLocATC:     runLocATC,
	MethodVAC:        runVAC,
	MethodEVAC:       runEVAC,
	MethodStructural: runStructural,
}

func runSEA(e *env, req Request) (*Outcome, error) {
	res, err := sea.SearchWithDistContext(e.ctx, e.g, e.distVec(), req.Query, req.Options())
	if res == nil {
		return nil, err
	}
	return &Outcome{
		Community: res.Community,
		CI:        res.CI,
		Satisfied: res.Satisfied,
		Truncated: err != nil,
		SEA:       res,
	}, err
}

func runExact(e *env, req Request) (*Outcome, error) {
	cfg := exact.DefaultConfig()
	cfg.MaxStates = req.MaxStates
	res, err := exact.SearchContext(e.ctx, e.g, req.Query, req.K, e.distVec(), cfg)
	if err != nil && res.Community == nil {
		return nil, err
	}
	return &Outcome{
		Community: res.Community,
		States:    res.Stats.States,
		Truncated: err != nil,
		Exact:     &res,
	}, err
}

func runACQ(e *env, req Request) (*Outcome, error) {
	return baselineOutcome(baselines.ACQContext(e.ctx, e.g, req.Query, req.K, baselineModel(req.Model)))
}

func runLocATC(e *env, req Request) (*Outcome, error) {
	return baselineOutcome(baselines.LocATCContext(e.ctx, e.g, req.Query, req.K, baselineModel(req.Model)))
}

func runVAC(e *env, req Request) (*Outcome, error) {
	return baselineOutcome(baselines.VACContext(e.ctx, e.g, e.metric(), req.Query, req.K, baselineModel(req.Model)))
}

// DefaultEVACStates is the EVAC state budget applied when Request.MaxStates
// is zero: unlike exact, EVAC's min-max branch-and-bound has no pruning, so
// "unlimited" would never return on a non-trivial graph.
const DefaultEVACStates = 200_000

func runEVAC(e *env, req Request) (*Outcome, error) {
	budget := req.MaxStates
	if budget == 0 {
		budget = DefaultEVACStates
	}
	return baselineOutcome(baselines.EVACContext(e.ctx, e.g, e.metric(), req.Query, req.K, baselineModel(req.Model), int(budget)))
}

func runStructural(e *env, req Request) (*Outcome, error) {
	var members []graph.NodeID
	if req.Model == sea.KTruss {
		members = truss.MaximalConnectedKTruss(e.g, req.Query, req.K)
	} else {
		members = kcore.MaximalConnectedKCore(e.g, req.Query, req.K)
	}
	if members == nil {
		return nil, cserr.ErrNoCommunity
	}
	return &Outcome{Community: members}, nil
}

// baselineOutcome adapts the ([]NodeID, error) contract of the baselines:
// a best-so-far community may accompany an interruption error.
func baselineOutcome(members []graph.NodeID, err error) (*Outcome, error) {
	if members == nil {
		return nil, err
	}
	return &Outcome{Community: members, Truncated: err != nil}, err
}

func baselineModel(m sea.Model) baselines.Model {
	if m == sea.KTruss {
		return baselines.KTruss
	}
	return baselines.KCore
}
