package query

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/attr"
	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/sea"
)

// figure1 builds the quickstart graph (Figure 1's movies): a dense crime-
// drama clique with two action movies hanging off it.
func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12, 2)
	attrs := [][]string{
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "crime", "drama"}, {"movie", "crime", "drama"},
		{"movie", "action", "drama"}, {"movie", "action", "crime"},
	}
	nums := [][2]float64{
		{9.2, 1.6e6}, {9.0, 1.1e6}, {8.7, 1.0e6}, {8.3, 550e3},
		{8.3, 320e3}, {7.9, 280e3}, {8.3, 750e3}, {7.5, 300e3},
		{7.6, 360e3}, {8.2, 500e3}, {6.2, 6.7e3}, {6.5, 9e3},
	}
	for i := range attrs {
		b.SetTextAttrs(graph.NodeID(i), attrs[i]...)
		b.SetNumAttrs(graph.NodeID(i), nums[i][0], nums[i][1])
	}
	edges := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 8}, {1, 2}, {1, 4}, {1, 8},
		{2, 3}, {2, 9}, {3, 9}, {4, 5}, {4, 8}, {5, 6}, {5, 7}, {6, 7},
		{2, 4}, {3, 5}, {6, 9}, {7, 9}, {0, 9}, {1, 3},
		{10, 11}, {10, 6}, {11, 7}, {10, 7}, {11, 6},
	}
	for _, e := range edges {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRequestValidate(t *testing.T) {
	valid := func() Request {
		r := DefaultRequest(0)
		r.K = 3
		return r
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Request)
		ok     bool
	}{
		{"defaults", func(r *Request) {}, true},
		{"zero values resolve to defaults", func(r *Request) { *r = Request{Query: 1} }, true},
		{"negative query", func(r *Request) { r.Query = -1 }, false},
		{"unknown method", func(r *Request) { r.Method = Method(99) }, false},
		{"negative method", func(r *Request) { r.Method = -1 }, false},
		{"unknown model", func(r *Request) { r.Model = sea.Model(7) }, false},
		{"exact with k-core", func(r *Request) { r.Method = MethodExact }, true},
		{"exact with k-truss", func(r *Request) { r.Method = MethodExact; r.Model = sea.KTruss }, false},
		{"negative k", func(r *Request) { r.K = -2 }, false},
		{"error bound too large", func(r *Request) { r.ErrorBound = 1.5 }, false},
		{"confidence too large", func(r *Request) { r.Confidence = 1 }, false},
		{"size bounds on sea", func(r *Request) { r.SizeLo, r.SizeHi = 4, 10 }, true},
		{"inverted size bounds", func(r *Request) { r.SizeLo, r.SizeHi = 10, 4 }, false},
		{"size bounds on exact", func(r *Request) { r.Method = MethodExact; r.SizeLo, r.SizeHi = 4, 10 }, false},
		{"size bounds on vac", func(r *Request) { r.Method = MethodVAC; r.SizeLo, r.SizeHi = 4, 10 }, false},
		{"size bounds on structural", func(r *Request) { r.Method = MethodStructural; r.SizeHi = 10 }, false},
		{"negative max states", func(r *Request) { r.Method = MethodExact; r.MaxStates = -1 }, false},
		{"max states neutralized for sea", func(r *Request) { r.MaxStates = -1 }, true},
		{"bad lambda", func(r *Request) { r.Lambda = 2 }, false},
		{"bad max rounds", func(r *Request) { r.MaxRounds = -1 }, false},
		{"truss on every baseline", func(r *Request) { r.Method = MethodLocATC; r.Model = sea.KTruss }, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := valid()
			tc.mutate(&r)
			err := r.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				if !errors.Is(err, cserr.ErrInvalidRequest) {
					t.Fatalf("error %v does not wrap ErrInvalidRequest", err)
				}
			}
		})
	}
}

func TestMethodRegistry(t *testing.T) {
	// Every registered method parses from its own name and yields a working
	// searcher; the searcher reports the method it routes to.
	for _, m := range Methods() {
		parsed, err := ParseMethod(m.String())
		if err != nil || parsed != m {
			t.Fatalf("ParseMethod(%q) = %v, %v", m.String(), parsed, err)
		}
		s, err := NewSearcher(m)
		if err != nil {
			t.Fatalf("NewSearcher(%v): %v", m, err)
		}
		if s.Method() != m {
			t.Fatalf("searcher for %v reports %v", m, s.Method())
		}
	}
	if _, err := ParseMethod("bogus"); !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("unknown name: %v", err)
	}
	if m, err := ParseMethod(""); err != nil || m != MethodSEA {
		t.Fatalf("empty name should select SEA, got %v, %v", m, err)
	}
	if _, err := NewSearcher(Method(42)); !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("unknown method: %v", err)
	}
	if len(MethodNames()) != len(Methods()) {
		t.Fatal("MethodNames and Methods disagree")
	}
}

// TestEveryMethodAnswersOneRequest is the unified-API contract: a single
// Request runs through every registered searcher, each returning a
// community containing the query node with a comparable Delta.
func TestEveryMethodAnswersOneRequest(t *testing.T) {
	g := figure1(t)
	req := DefaultRequest(0)
	req.K = 3
	req.MaxStates = 50000
	for _, m := range Methods() {
		s, err := NewSearcher(m)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Search(context.Background(), g, req)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if out.Method != m {
			t.Fatalf("%v: outcome reports method %v", m, out.Method)
		}
		found := false
		for _, v := range out.Community {
			found = found || v == req.Query
		}
		if !found {
			t.Fatalf("%v: community %v misses the query node", m, out.Community)
		}
		if out.Delta < 0 {
			t.Fatalf("%v: negative delta %v", m, out.Delta)
		}
		if m == MethodSEA && out.SEA == nil {
			t.Fatal("SEA outcome missing its trace")
		}
		if m == MethodExact && (out.Exact == nil || out.States == 0) {
			t.Fatalf("exact outcome missing its trace: %+v", out)
		}
	}
}

// TestRunMatchesLegacyEntryPoints pins the adapter property: the unified
// path answers exactly what the method-specific entry points answer.
func TestRunMatchesLegacyEntryPoints(t *testing.T) {
	g := figure1(t)
	m, err := attr.NewMetric(g, DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	req := DefaultRequest(0)
	req.K = 3

	out, err := Run(context.Background(), g, m, nil, req)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := sea.Search(g, m, 0, req.Options())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out.Community) != fmt.Sprint(legacy.Community) || out.Delta != legacy.Delta || out.CI != legacy.CI {
		t.Fatalf("unified %v δ=%v vs legacy %v δ=%v", out.Community, out.Delta, legacy.Community, legacy.Delta)
	}
}

// TestOptionsRoundTrip pins the lossless Request ↔ sea.Options projection.
func TestOptionsRoundTrip(t *testing.T) {
	opts := sea.DefaultOptions()
	opts.K = 7
	opts.Model = sea.KTruss
	opts.SizeLo, opts.SizeHi = 8, 20
	opts.NoRefine = true
	opts.Seed = 99
	req := FromOptions(3, opts)
	if got := req.Options(); got != opts {
		t.Fatalf("Options round trip:\n got %+v\nwant %+v", got, opts)
	}
	if back := FromOptions(3, req.Options()); back != req.WithDefaults() {
		t.Fatalf("FromOptions round trip:\n got %+v\nwant %+v", back, req.WithDefaults())
	}
}

// TestRequestJSONRoundTrip pins the wire format: a Request survives JSON
// encode/decode bit for bit (BLB aside, which is not wire-exposed).
func TestRequestJSONRoundTrip(t *testing.T) {
	req := DefaultRequest(5)
	req.Method = MethodExact
	req.K = 6
	req.MaxStates = 1234
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.WithDefaults() != req.WithDefaults() {
		t.Fatalf("JSON round trip:\n got %+v\nwant %+v\nwire %s", back, req, blob)
	}
	// The truss model round-trips through its wire name.
	req.Method = MethodVAC
	req.Model = sea.KTruss
	blob, _ = json.Marshal(req)
	var back2 Request
	if err := json.Unmarshal(blob, &back2); err != nil {
		t.Fatal(err)
	}
	if back2.Model != sea.KTruss || back2.Method != MethodVAC {
		t.Fatalf("model/method lost: %s → %+v", blob, back2)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	g := figure1(t)
	req := DefaultRequest(9999) // out of range
	if _, err := Execute(context.Background(), g, req); !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("out-of-range query: %v", err)
	}
	if _, err := Execute(context.Background(), nil, DefaultRequest(0)); !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("nil graph: %v", err)
	}
}

func TestStructuralAndNoCommunity(t *testing.T) {
	g := figure1(t)
	req := DefaultRequest(0)
	req.K = 99
	for _, m := range []Method{MethodSEA, MethodExact, MethodVAC, MethodStructural} {
		req.Method = m
		_, err := Execute(context.Background(), g, req)
		if !errors.Is(err, cserr.ErrNoCommunity) {
			t.Fatalf("%v with k=99: want ErrNoCommunity, got %v", m, err)
		}
	}
}

// TestExactBudgetTruncates pins the best-so-far contract of a state budget
// through the unified path, for both budgeted methods.
func TestExactBudgetTruncates(t *testing.T) {
	g := figure1(t)
	for _, m := range []Method{MethodExact, MethodEVAC} {
		req := DefaultRequest(0)
		req.K = 3
		req.Method = m
		req.MaxStates = 2
		out, err := Execute(context.Background(), g, req)
		if !errors.Is(err, cserr.ErrBudgetExhausted) {
			t.Fatalf("%v: want ErrBudgetExhausted, got %v", m, err)
		}
		if out == nil || !out.Truncated || len(out.Community) == 0 {
			t.Fatalf("%v: truncated outcome: %+v", m, out)
		}
	}
}
