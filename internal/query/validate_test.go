package query

import (
	"errors"
	"testing"

	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/sea"
)

// validBase returns a fully valid request the negative-field table perturbs.
func validBase() Request {
	return Request{Query: 3, Method: MethodSEA, K: 4, Seed: 1}.WithDefaults()
}

// TestValidateRejectsNegatives audits every numeric Request field:
// WithDefaults substitutes defaults only on zero, so a negative value must
// be caught by Validate (as ErrInvalidRequest) instead of slipping into a
// solver. This is the regression net for the bug where negative
// K/ErrorBound/Confidence/MaxRounds/size bounds rode a zero-check past
// defaulting.
func TestValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Request)
	}{
		{"Query", func(r *Request) { r.Query = -1 }},
		{"K", func(r *Request) { r.K = -4 }},
		{"ErrorBound", func(r *Request) { r.ErrorBound = -0.02 }},
		{"Confidence", func(r *Request) { r.Confidence = -0.95 }},
		{"SizeLo", func(r *Request) { r.SizeLo = -3 }},
		{"SizeHi", func(r *Request) { r.SizeHi = -10 }},
		{"SizeLoHi", func(r *Request) { r.SizeLo, r.SizeHi = -3, -1 }},
		{"MaxStates", func(r *Request) { r.MaxStates = -1; r.Method = MethodExact }},
		{"Lambda", func(r *Request) { r.Lambda = -0.5 }},
		{"Eps", func(r *Request) { r.Eps = -1 }},
		{"Beta", func(r *Request) { r.Beta = -0.25 }},
		{"MaxRounds", func(r *Request) { r.MaxRounds = -2 }},
		{"Method", func(r *Request) { r.Method = Method(-1) }},
		{"Model", func(r *Request) { r.Model = sea.Model(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := validBase()
			tc.mut(&req)
			err := req.Validate()
			if err == nil {
				t.Fatalf("negative %s accepted: %+v", tc.name, req)
			}
			if !errors.Is(err, cserr.ErrInvalidRequest) {
				t.Fatalf("negative %s: error %v does not wrap ErrInvalidRequest", tc.name, err)
			}
			// The canonical form must be rejected identically: WithDefaults
			// must not launder a negative into a default.
			if err := req.WithDefaults().Validate(); !errors.Is(err, cserr.ErrInvalidRequest) {
				t.Fatalf("negative %s laundered by WithDefaults: %v", tc.name, err)
			}
		})
	}
}

// TestValidateNegativeSeedAllowed pins the one deliberate exception: Seed
// is an arbitrary int64 (any value seeds the RNG), so negatives pass.
func TestValidateNegativeSeedAllowed(t *testing.T) {
	req := validBase()
	req.Seed = -7
	if err := req.Validate(); err != nil {
		t.Fatalf("negative seed rejected: %v", err)
	}
}

// TestValidateAcceptsBase sanity-checks the table's starting point.
func TestValidateAcceptsBase(t *testing.T) {
	if err := validBase().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeRequestNeverReachesSolver drives the negative table through
// Run against a real graph: every case must return ErrInvalidRequest, never
// a solver panic or result.
func TestNegativeRequestNeverReachesSolver(t *testing.T) {
	b := graph.NewBuilder(6, 1)
	for v := graph.NodeID(0); v < 6; v++ {
		b.SetTextAttrs(v, "t")
		b.SetNumAttrs(v, 0.5)
		b.AddEdge(v, (v+1)%6)
	}
	g := b.MustBuild()
	muts := []func(*Request){
		func(r *Request) { r.K = -4 },
		func(r *Request) { r.ErrorBound = -0.02 },
		func(r *Request) { r.Confidence = -0.95 },
		func(r *Request) { r.SizeLo = -3 },
		func(r *Request) { r.SizeHi = -10 },
		func(r *Request) { r.MaxRounds = -2 },
	}
	for i, mut := range muts {
		req := validBase()
		mut(&req)
		out, err := Run(t.Context(), g, nil, nil, req)
		if out != nil || !errors.Is(err, cserr.ErrInvalidRequest) {
			t.Fatalf("case %d: out=%v err=%v", i, out, err)
		}
	}
}
