// Package sampling implements the attribute-aware sampling step of the
// paper (§V-A): construction of the query neighborhood Gq by best-first
// expansion until the Hoeffding minimum size is reached, sampling
// probabilities Ps(v) proportional to attribute similarity (Eq. 5), and
// weighted sampling without replacement.
//
// Every operation has an allocation-free form (the *Into variants) that
// threads a ws.Workspace for its scratch state — visited sets, the frontier
// heap, the sampling-key array — and appends results to caller-owned
// slices. The legacy forms keep their original signatures and borrow a
// pooled workspace internally.
package sampling

import (
	"math"
	"math/rand"
	"slices"

	"repro/internal/graph"
	"repro/internal/ws"
)

// The frontier heap is a hand-rolled binary min-heap over ws.NodeDist with
// exactly container/heap's sift rules, so pop order (and therefore every
// sampling outcome for a fixed seed) is identical to the historical
// container/heap implementation — without the per-push interface boxing
// allocation.

func heapPush(h []ws.NodeDist, x ws.NodeDist) []ws.NodeDist {
	h = append(h, x)
	j := len(h) - 1
	for {
		i := (j - 1) / 2
		if i == j || !(h[j].D < h[i].D) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

func heapPop(h []ws.NodeDist) ([]ws.NodeDist, ws.NodeDist) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down over h[:n].
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].D < h[j1].D {
			j = j2
		}
		if !(h[j].D < h[i].D) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h[:n], h[n]
}

// BuildGq expands a best-first search from q, always visiting the frontier
// node with the smallest composite distance to q first, until minSize nodes
// are collected (or the component of q is exhausted). dist[v] must hold
// f(v,q). q is always the first element of the result.
func BuildGq(g graph.Adjacency, q graph.NodeID, dist []float64, minSize int) []graph.NodeID {
	w := ws.Get()
	defer w.Release()
	if minSize < 1 {
		minSize = 1
	}
	return BuildGqInto(make([]graph.NodeID, 0, minSize), g, q, dist, minSize, w)
}

// BuildGqInto is BuildGq appending to dst, with all scratch state (visited
// set, frontier heap) drawn from w: zero allocations once dst and w have
// warmed to the working size.
func BuildGqInto(dst []graph.NodeID, g graph.Adjacency, q graph.NodeID, dist []float64, minSize int, w *ws.Workspace) []graph.NodeID {
	if minSize < 1 {
		minSize = 1
	}
	w.Visited.Reset(g.NumNodes())
	h := w.Heap[:0]
	h = heapPush(h, ws.NodeDist{V: q, D: 0})
	w.Visited.Add(q)
	for len(h) > 0 && len(dst) < minSize {
		var nd ws.NodeDist
		h, nd = heapPop(h)
		dst = append(dst, nd.V)
		for _, u := range g.NeighborsInto(&w.NbrA, nd.V) {
			if w.Visited.Add(u) {
				h = heapPush(h, ws.NodeDist{V: u, D: dist[u]})
			}
		}
	}
	w.Heap = h[:0]
	return dst
}

// BuildGqBFS is the plain hop-order variant used by the frontier ablation
// benchmark: identical contract to BuildGq but breadth-first instead of
// best-first.
func BuildGqBFS(g graph.Adjacency, q graph.NodeID, minSize int) []graph.NodeID {
	if minSize < 1 {
		minSize = 1
	}
	out := make([]graph.NodeID, 0, minSize)
	seen := make([]bool, g.NumNodes())
	seen[q] = true
	out = append(out, q)
	var nbr []graph.NodeID
	for i := 0; i < len(out) && len(out) < minSize; i++ {
		for _, u := range g.NeighborsInto(&nbr, out[i]) {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
				if len(out) >= minSize {
					break
				}
			}
		}
	}
	return out
}

// Probabilities computes the normalized sampling probabilities of Eq. 5 over
// the population nodes: Ps(v) ∝ 1 − f(v,q). If all distances are 1 the
// distribution degenerates to uniform.
func Probabilities(population []graph.NodeID, dist []float64) []float64 {
	return ProbabilitiesInto(make([]float64, 0, len(population)), population, dist)
}

// ProbabilitiesInto is Probabilities appending to dst.
func ProbabilitiesInto(dst []float64, population []graph.NodeID, dist []float64) []float64 {
	start := len(dst)
	sum := 0.0
	for _, v := range population {
		w := 1 - dist[v]
		if w < 0 {
			w = 0
		}
		dst = append(dst, w)
		sum += w
	}
	ps := dst[start:]
	if sum <= 0 {
		u := 1 / float64(len(population))
		for i := range ps {
			ps[i] = u
		}
		return dst
	}
	for i := range ps {
		ps[i] /= sum
	}
	return dst
}

// WeightedSample draws size distinct nodes from population with probability
// proportional to weights, using the exponential-keys method (Efraimidis &
// Spirakis A-ES): key_i = U_i^(1/w_i); take the size largest keys. Nodes with
// zero weight are drawn only if the positive-weight pool is exhausted.
// The query node, if present in population, is always included.
func WeightedSample(population []graph.NodeID, weights []float64, size int, q graph.NodeID, rng *rand.Rand) []graph.NodeID {
	w := ws.Get()
	defer w.Release()
	return WeightedSampleInto(nil, population, weights, size, q, rng, w)
}

// WeightedSampleInto is WeightedSample appending to dst, drawing the key
// array from w.
func WeightedSampleInto(dst []graph.NodeID, population []graph.NodeID, weights []float64, size int, q graph.NodeID, rng *rand.Rand, w *ws.Workspace) []graph.NodeID {
	if size >= len(population) {
		return append(dst, population...)
	}
	if size < 1 {
		size = 1
	}
	keys := w.Keys[:0]
	for i, v := range population {
		wt := weights[i]
		var key float64
		switch {
		case v == q:
			key = math.Inf(1) // force inclusion
		case wt <= 0:
			key = -rng.Float64() // after every positive-weight node
		default:
			key = math.Pow(rng.Float64(), 1/wt)
		}
		keys = append(keys, ws.NodeDist{V: v, D: key})
	}
	slices.SortFunc(keys, func(a, b ws.NodeDist) int {
		switch {
		case a.D > b.D:
			return -1
		case a.D < b.D:
			return 1
		default:
			return 0
		}
	})
	for i := 0; i < size; i++ {
		dst = append(dst, keys[i].V)
	}
	w.Keys = keys[:0]
	return dst
}

// RouletteSample is the naive with-rejection alternative used by the
// sampling ablation benchmark: repeated roulette-wheel draws, rejecting
// duplicates. Same contract as WeightedSample.
func RouletteSample(population []graph.NodeID, weights []float64, size int, q graph.NodeID, rng *rand.Rand) []graph.NodeID {
	if size >= len(population) {
		return append([]graph.NodeID(nil), population...)
	}
	if size < 1 {
		size = 1
	}
	total := 0.0
	maxID := q
	for i, v := range population {
		if weights[i] > 0 {
			total += weights[i]
		}
		if v > maxID {
			maxID = v
		}
	}
	w := ws.Get()
	defer w.Release()
	chosen := &w.Member
	chosen.Reset(int(maxID) + 1)
	out := make([]graph.NodeID, 0, size)
	add := func(v graph.NodeID) {
		if chosen.Add(v) {
			out = append(out, v)
		}
	}
	if q >= 0 {
		add(q)
	}
	attempts := 0
	maxAttempts := 50 * size
	for len(out) < size && attempts < maxAttempts && total > 0 {
		attempts++
		r := rng.Float64() * total
		acc := 0.0
		for i, v := range population {
			if weights[i] <= 0 {
				continue
			}
			acc += weights[i]
			if r <= acc {
				add(v)
				break
			}
		}
	}
	// Fill deterministically if rejection stalls.
	for _, v := range population {
		if len(out) >= size {
			break
		}
		add(v)
	}
	return out
}
