// Package sampling implements the attribute-aware sampling step of the
// paper (§V-A): construction of the query neighborhood Gq by best-first
// expansion until the Hoeffding minimum size is reached, sampling
// probabilities Ps(v) proportional to attribute similarity (Eq. 5), and
// weighted sampling without replacement.
package sampling

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// nodeDist orders frontier nodes by composite distance to the query.
type nodeDist struct {
	v graph.NodeID
	d float64
}

type distHeap []nodeDist

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BuildGq expands a best-first search from q, always visiting the frontier
// node with the smallest composite distance to q first, until minSize nodes
// are collected (or the component of q is exhausted). dist[v] must hold
// f(v,q). q is always the first element of the result.
func BuildGq(g *graph.Graph, q graph.NodeID, dist []float64, minSize int) []graph.NodeID {
	if minSize < 1 {
		minSize = 1
	}
	seen := make([]bool, g.NumNodes())
	h := &distHeap{{q, 0}}
	seen[q] = true
	out := make([]graph.NodeID, 0, minSize)
	for h.Len() > 0 && len(out) < minSize {
		nd := heap.Pop(h).(nodeDist)
		out = append(out, nd.v)
		for _, u := range g.Neighbors(nd.v) {
			if !seen[u] {
				seen[u] = true
				heap.Push(h, nodeDist{u, dist[u]})
			}
		}
	}
	return out
}

// BuildGqBFS is the plain hop-order variant used by the frontier ablation
// benchmark: identical contract to BuildGq but breadth-first instead of
// best-first.
func BuildGqBFS(g *graph.Graph, q graph.NodeID, minSize int) []graph.NodeID {
	if minSize < 1 {
		minSize = 1
	}
	out := make([]graph.NodeID, 0, minSize)
	g.BFS(q, func(v graph.NodeID, _ int) bool {
		out = append(out, v)
		return len(out) < minSize
	})
	return out
}

// Probabilities computes the normalized sampling probabilities of Eq. 5 over
// the population nodes: Ps(v) ∝ 1 − f(v,q). If all distances are 1 the
// distribution degenerates to uniform.
func Probabilities(population []graph.NodeID, dist []float64) []float64 {
	ps := make([]float64, len(population))
	sum := 0.0
	for i, v := range population {
		w := 1 - dist[v]
		if w < 0 {
			w = 0
		}
		ps[i] = w
		sum += w
	}
	if sum <= 0 {
		u := 1 / float64(len(population))
		for i := range ps {
			ps[i] = u
		}
		return ps
	}
	for i := range ps {
		ps[i] /= sum
	}
	return ps
}

// WeightedSample draws size distinct nodes from population with probability
// proportional to weights, using the exponential-keys method (Efraimidis &
// Spirakis A-ES): key_i = U_i^(1/w_i); take the size largest keys. Nodes with
// zero weight are drawn only if the positive-weight pool is exhausted.
// The query node, if present in population, is always included.
func WeightedSample(population []graph.NodeID, weights []float64, size int, q graph.NodeID, rng *rand.Rand) []graph.NodeID {
	if size >= len(population) {
		return append([]graph.NodeID(nil), population...)
	}
	if size < 1 {
		size = 1
	}
	type keyed struct {
		v   graph.NodeID
		key float64
	}
	keys := make([]keyed, len(population))
	for i, v := range population {
		w := weights[i]
		var key float64
		switch {
		case v == q:
			key = math.Inf(1) // force inclusion
		case w <= 0:
			key = -rng.Float64() // after every positive-weight node
		default:
			key = math.Pow(rng.Float64(), 1/w)
		}
		keys[i] = keyed{v, key}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key > keys[j].key })
	out := make([]graph.NodeID, size)
	for i := 0; i < size; i++ {
		out[i] = keys[i].v
	}
	return out
}

// RouletteSample is the naive with-rejection alternative used by the
// sampling ablation benchmark: repeated roulette-wheel draws, rejecting
// duplicates. Same contract as WeightedSample.
func RouletteSample(population []graph.NodeID, weights []float64, size int, q graph.NodeID, rng *rand.Rand) []graph.NodeID {
	if size >= len(population) {
		return append([]graph.NodeID(nil), population...)
	}
	if size < 1 {
		size = 1
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	chosen := make(map[graph.NodeID]bool, size)
	out := make([]graph.NodeID, 0, size)
	add := func(v graph.NodeID) {
		if !chosen[v] {
			chosen[v] = true
			out = append(out, v)
		}
	}
	add(q)
	attempts := 0
	maxAttempts := 50 * size
	for len(out) < size && attempts < maxAttempts && total > 0 {
		attempts++
		r := rng.Float64() * total
		acc := 0.0
		for i, v := range population {
			if weights[i] <= 0 {
				continue
			}
			acc += weights[i]
			if r <= acc {
				add(v)
				break
			}
		}
	}
	// Fill deterministically if rejection stalls.
	for _, v := range population {
		if len(out) >= size {
			break
		}
		add(v)
	}
	return out
}
