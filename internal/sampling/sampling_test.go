package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// lineGraph builds a path 0-1-2-…-(n-1) with f(v,q)=dist[v].
func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.MustBuild()
}

func TestBuildGqBestFirstOrder(t *testing.T) {
	// Star: q=0 with leaves 1..5; distances favor high-ID leaves. Best-first
	// must pick the closest leaves.
	b := graph.NewBuilder(6, 0)
	for i := 1; i < 6; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	g := b.MustBuild()
	dist := []float64{0, 0.9, 0.7, 0.5, 0.3, 0.1}
	gq := BuildGq(g, 0, dist, 3)
	if len(gq) != 3 {
		t.Fatalf("|Gq| = %d, want 3", len(gq))
	}
	if gq[0] != 0 {
		t.Errorf("Gq[0] = %d, want q", gq[0])
	}
	if gq[1] != 5 || gq[2] != 4 {
		t.Errorf("Gq = %v, want closest leaves 5,4 first", gq)
	}
}

func TestBuildGqExhaustsComponent(t *testing.T) {
	g := lineGraph(4)
	dist := []float64{0, 0.1, 0.2, 0.3}
	gq := BuildGq(g, 0, dist, 100)
	if len(gq) != 4 {
		t.Errorf("|Gq| = %d, want whole component", len(gq))
	}
}

func TestBuildGqBFS(t *testing.T) {
	g := lineGraph(10)
	gq := BuildGqBFS(g, 0, 4)
	if len(gq) != 4 {
		t.Fatalf("|Gq| = %d, want 4", len(gq))
	}
	for i, v := range gq {
		if v != graph.NodeID(i) {
			t.Errorf("BFS order wrong: %v", gq)
		}
	}
}

func TestProbabilities(t *testing.T) {
	pop := []graph.NodeID{0, 1, 2}
	dist := []float64{0, 0.5, 1}
	ps := Probabilities(pop, dist)
	sum := 0.0
	for _, p := range ps {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if !(ps[0] > ps[1] && ps[1] > ps[2]) {
		t.Errorf("ps = %v, want decreasing with distance", ps)
	}
	if ps[2] != 0 {
		t.Errorf("ps[dist=1] = %v, want 0", ps[2])
	}
}

func TestProbabilitiesDegenerate(t *testing.T) {
	pop := []graph.NodeID{0, 1}
	ps := Probabilities(pop, []float64{1, 1})
	if ps[0] != 0.5 || ps[1] != 0.5 {
		t.Errorf("degenerate ps = %v, want uniform", ps)
	}
}

func TestWeightedSampleContract(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pop := make([]graph.NodeID, 100)
	w := make([]float64, 100)
	for i := range pop {
		pop[i] = graph.NodeID(i)
		w[i] = float64(i + 1)
	}
	s := WeightedSample(pop, w, 20, 0, rng)
	if len(s) != 20 {
		t.Fatalf("|S| = %d, want 20", len(s))
	}
	seen := map[graph.NodeID]bool{}
	hasQ := false
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate node %d", v)
		}
		seen[v] = true
		if v == 0 {
			hasQ = true
		}
	}
	if !hasQ {
		t.Error("query node not forced into the sample")
	}
}

func TestWeightedSampleWholePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pop := []graph.NodeID{3, 1, 4}
	s := WeightedSample(pop, []float64{1, 1, 1}, 10, 3, rng)
	if len(s) != 3 {
		t.Errorf("|S| = %d, want whole population", len(s))
	}
}

func TestWeightedSampleBias(t *testing.T) {
	// Node 1 has 9× the weight of node 2; over many draws of size 1 from
	// {1,2} (q excluded by using q=-1), node 1 must dominate.
	rng := rand.New(rand.NewSource(9))
	pop := []graph.NodeID{1, 2}
	w := []float64{0.9, 0.1}
	count := 0
	trials := 2000
	for i := 0; i < trials; i++ {
		s := WeightedSample(pop, w, 1, -1, rng)
		if s[0] == 1 {
			count++
		}
	}
	frac := float64(count) / float64(trials)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("node 1 drawn %.3f of the time, want ≈0.9", frac)
	}
}

func TestRouletteSampleContract(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop := make([]graph.NodeID, 50)
	w := make([]float64, 50)
	for i := range pop {
		pop[i] = graph.NodeID(i)
		w[i] = 1
	}
	s := RouletteSample(pop, w, 10, 5, rng)
	if len(s) != 10 {
		t.Fatalf("|S| = %d, want 10", len(s))
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate in roulette sample")
		}
		seen[v] = true
	}
	if !seen[5] {
		t.Error("query node missing")
	}
}

func TestPropertySampleDistinctAndSized(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		pop := make([]graph.NodeID, n)
		w := make([]float64, n)
		for i := range pop {
			pop[i] = graph.NodeID(i)
			w[i] = rng.Float64()
		}
		size := 1 + rng.Intn(n)
		q := graph.NodeID(rng.Intn(n))
		s := WeightedSample(pop, w, size, q, rng)
		if len(s) != size {
			return false
		}
		seen := map[graph.NodeID]bool{}
		hasQ := false
		for _, v := range s {
			if seen[v] {
				return false
			}
			seen[v] = true
			if v == q {
				hasQ = true
			}
		}
		return hasQ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGqContainsQAndMeetsSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		b := graph.NewBuilder(n, 0)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = rng.Float64()
		}
		q := graph.NodeID(rng.Intn(n))
		dist[q] = 0
		want := 1 + rng.Intn(n)
		gq := BuildGq(g, q, dist, want)
		if len(gq) == 0 || gq[0] != q {
			return false
		}
		// Size is min(want, |component of q|).
		comp := g.Component(q, nil)
		expect := want
		if len(comp) < expect {
			expect = len(comp)
		}
		return len(gq) == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
