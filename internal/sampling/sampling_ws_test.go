package sampling

import (
	"container/heap"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ws"
)

// refHeap replays the historical container/heap frontier so the hand-rolled
// heap can be proven pop-order identical.
type refEntry struct {
	v graph.NodeID
	d float64
}
type refHeap []refEntry

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEntry)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestHeapMatchesContainerHeap drives both heaps with the same random
// push/pop schedule and demands identical pop order — the property that
// keeps BuildGq's output stable across the substrate rewrite.
func TestHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var ours []ws.NodeDist
	ref := &refHeap{}
	for step := 0; step < 5000; step++ {
		if len(ours) == 0 || rng.Intn(3) != 0 {
			v, d := graph.NodeID(rng.Intn(1000)), rng.Float64()
			ours = heapPush(ours, ws.NodeDist{V: v, D: d})
			heap.Push(ref, refEntry{v, d})
		} else {
			var got ws.NodeDist
			ours, got = heapPop(ours)
			want := heap.Pop(ref).(refEntry)
			if got.V != want.v || got.D != want.d {
				t.Fatalf("step %d: pop (%d,%v), want (%d,%v)", step, got.V, got.D, want.v, want.d)
			}
		}
	}
}

func wsTestGraph(t *testing.T) (*graph.Graph, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	n := 300
	b := graph.NewBuilder(n, 0)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g := b.MustBuild()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = rng.Float64()
	}
	return g, dist
}

// TestBuildGqIntoMatchesBuildGq: the workspace-threaded form must be
// output-identical to the allocating wrapper.
func TestBuildGqIntoMatchesBuildGq(t *testing.T) {
	g, dist := wsTestGraph(t)
	w := ws.Get()
	defer w.Release()
	for _, size := range []int{1, 10, 50, 299, 1000} {
		want := BuildGq(g, 0, dist, size)
		got := BuildGqInto(nil, g, 0, dist, size, w)
		if len(got) != len(want) {
			t.Fatalf("size %d: len %d vs %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: element %d: %d vs %d", size, i, got[i], want[i])
			}
		}
	}
}

// TestWeightedSampleIntoMatchesWeightedSample: same rng schedule, same
// output.
func TestWeightedSampleIntoMatchesWeightedSample(t *testing.T) {
	g, dist := wsTestGraph(t)
	gq := BuildGq(g, 0, dist, 200)
	probs := Probabilities(gq, dist)
	w := ws.Get()
	defer w.Release()
	for _, size := range []int{1, 20, 100} {
		want := WeightedSample(gq, probs, size, 0, rand.New(rand.NewSource(13)))
		got := WeightedSampleInto(nil, gq, probs, size, 0, rand.New(rand.NewSource(13)), w)
		if len(got) != len(want) {
			t.Fatalf("size %d: len %d vs %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: element %d: %d vs %d", size, i, got[i], want[i])
			}
		}
	}
}

// TestProbabilitiesIntoAppends: ProbabilitiesInto must append after existing
// elements and normalize only its own segment.
func TestProbabilitiesIntoAppends(t *testing.T) {
	g, dist := wsTestGraph(t)
	gq := BuildGq(g, 0, dist, 50)
	prefix := []float64{42}
	out := ProbabilitiesInto(prefix, gq, dist)
	if out[0] != 42 || len(out) != 51 {
		t.Fatalf("prefix clobbered: %v len %d", out[0], len(out))
	}
	sum := 0.0
	for _, p := range out[1:] {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum %v, want 1", sum)
	}
}
