package sampling

// Statistical tests on the weighted sampler: beyond the contract checks in
// sampling_test.go, verify that inclusion frequencies actually track the
// requested probabilities (the property Eq. 5's attribute-aware sampling
// relies on).

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestWeightedSampleInclusionFrequencies(t *testing.T) {
	// Population of 20 nodes with linearly increasing weights; draw samples
	// of size 5 many times and compare empirical inclusion frequencies with
	// the A-ES inclusion ordering: higher weight ⇒ included at least as
	// often (within noise).
	const n, size, trials = 20, 5, 4000
	pop := make([]graph.NodeID, n)
	w := make([]float64, n)
	for i := range pop {
		pop[i] = graph.NodeID(i)
		w[i] = float64(i + 1)
	}
	rng := rand.New(rand.NewSource(123))
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for _, v := range WeightedSample(pop, w, size, -1, rng) {
			counts[v]++
		}
	}
	// Bucket nodes into quartiles by weight; frequencies must increase
	// strictly across quartiles.
	quartile := func(lo, hi int) float64 {
		sum := 0
		for i := lo; i < hi; i++ {
			sum += counts[i]
		}
		return float64(sum) / float64(hi-lo) / trials
	}
	q1, q2, q3, q4 := quartile(0, 5), quartile(5, 10), quartile(10, 15), quartile(15, 20)
	if !(q1 < q2 && q2 < q3 && q3 < q4) {
		t.Errorf("inclusion frequencies not increasing with weight: %.3f %.3f %.3f %.3f", q1, q2, q3, q4)
	}
	// The top node (weight 20) must be drawn far more often than the bottom
	// one (weight 1).
	if counts[19] < counts[0]*3 {
		t.Errorf("weight-20 node drawn %d times vs weight-1 node %d", counts[19], counts[0])
	}
}

func TestRouletteMatchesWeightedDistribution(t *testing.T) {
	// Both samplers target the same distribution; their per-node inclusion
	// frequencies over many draws must agree within a few percent.
	const n, size, trials = 12, 3, 3000
	pop := make([]graph.NodeID, n)
	w := make([]float64, n)
	for i := range pop {
		pop[i] = graph.NodeID(i)
		w[i] = 1 + float64(i%4)
	}
	countA := make([]float64, n)
	countB := make([]float64, n)
	rngA := rand.New(rand.NewSource(1))
	rngB := rand.New(rand.NewSource(2))
	for trial := 0; trial < trials; trial++ {
		// Both samplers force-include the same q so the number of free
		// slots matches.
		for _, v := range WeightedSample(pop, w, size, pop[0], rngA) {
			countA[v]++
		}
		for _, v := range RouletteSample(pop, w, size, pop[0], rngB) {
			countB[v]++
		}
	}
	// Node 0 is the forced q in both samplers, so skip it.
	for v := 1; v < n; v++ {
		fa := countA[v] / trials
		fb := countB[v] / trials
		if math.Abs(fa-fb) > 0.08 {
			t.Errorf("node %d: inclusion %.3f (A-ES) vs %.3f (roulette)", v, fa, fb)
		}
	}
}
