package sea

// Batch query execution: run many SEA queries concurrently with a bounded
// worker pool, amortizing nothing across queries except the immutable graph
// (each worker derives its own RNG so results stay deterministic per query).

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/attr"
	"repro/internal/cserr"
	"repro/internal/graph"
)

// BatchResult pairs one query with its outcome.
type BatchResult struct {
	Query  graph.NodeID
	Result *Result // nil when Err != nil
	Err    error
}

// BatchSearch runs SEA for every query concurrently using up to workers
// goroutines (0 means GOMAXPROCS). Results are returned in query order.
// Each query uses an independent RNG seeded from opts.Seed and its position,
// so the output is deterministic regardless of scheduling.
func BatchSearch(g graph.CSR, m *attr.Metric, queries []graph.NodeID, opts Options, workers int) ([]BatchResult, error) {
	return BatchSearchContext(context.Background(), g, m, queries, opts, workers)
}

// BatchSearchContext is BatchSearch under a context: every per-query search
// runs with ctx, so cancelling it interrupts in-flight queries (each returns
// its best-so-far with ctx's error wrapped) and skips unstarted ones.
func BatchSearchContext(ctx context.Context, g graph.CSR, m *attr.Metric, queries []graph.NodeID, opts Options, workers int) ([]BatchResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if m.Graph() != g {
		return nil, cserr.Invalidf("sea: metric bound to a different graph")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]BatchResult, len(queries))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := queries[i]
				o := opts
				o.Seed = opts.Seed + int64(i)*1_000_003
				res, err := SearchContext(ctx, g, m, q, o)
				out[i] = BatchResult{Query: q, Result: res, Err: err}
			}
		}()
	}
feed:
	for i := range queries {
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(queries); j++ {
				out[j] = BatchResult{Query: queries[j], Err: ctx.Err()}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return out, nil
}
