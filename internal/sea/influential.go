package sea

// Influential community search, the §VI-A extension sketched for
// heterogeneous influential communities (HIC): find the connected k-core
// containing q that maximizes the community's minimum member influence, and
// report an EVT-based estimate of the maximum influence reachable in q's
// neighborhood (the paper proposes Extreme Value Theory for the MAX-value
// estimation of influence-vector elements).

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/stats"
)

// InfluentialResult is the outcome of an influential community search.
type InfluentialResult struct {
	Community []graph.NodeID // the max-min-influence connected k-core with q
	// MinInfluence is the community's influence value (the minimum over
	// members), the objective being maximized.
	MinInfluence float64
	// MaxEstimate is the EVT estimate of the maximum influence present in
	// the search region, quantifying how influential the neighborhood could
	// get (§VI-A's EVT-based MAX estimation).
	MaxEstimate stats.MaxEstimate
}

// InfluentialSearch finds the connected k-core containing q whose minimum
// member influence is maximal, by peeling minimum-influence nodes while the
// structure survives — the standard influential-community peeling, which is
// exact for the max-min objective. influence[v] is v's influence score
// (e.g. an h-index or PageRank); len(influence) must equal g.NumNodes().
func InfluentialSearch(g graph.Adjacency, q graph.NodeID, k int, influence []float64) (*InfluentialResult, error) {
	if len(influence) != g.NumNodes() {
		return nil, fmt.Errorf("sea: influence vector has %d entries for %d nodes", len(influence), g.NumNodes())
	}
	members := kcore.MaximalConnectedKCore(g, q, k)
	if members == nil {
		return nil, ErrNoCommunity
	}
	sub, err := kcore.NewSub(g, q, k, members)
	if err != nil {
		return nil, err
	}
	best := append([]graph.NodeID(nil), members...)
	bestMin := minInfluence(influence, best)
	buf := make([]graph.NodeID, 0, len(members))
	for {
		buf = sub.Members(buf[:0])
		// Peel the alive node with minimum influence (never q).
		var worst graph.NodeID = -1
		worstI := 0.0
		for _, v := range buf {
			if v == q {
				continue
			}
			if worst < 0 || influence[v] < worstI {
				worst = v
				worstI = influence[v]
			}
		}
		if worst < 0 {
			break
		}
		removed, qAlive := sub.RemoveCascade(worst)
		if !qAlive || sub.Size() < k+1 {
			sub.Restore(removed)
			break
		}
		cur := sub.Members(nil)
		if mi := minInfluence(influence, cur); mi > bestMin {
			bestMin = mi
			best = cur
		}
	}

	res := &InfluentialResult{Community: best, MinInfluence: bestMin}
	// EVT max estimation over the influence values of the search region.
	values := make([]float64, 0, len(members))
	for _, v := range members {
		values = append(values, influence[v])
	}
	if est, err := stats.EstimateMax(values, 0.2); err == nil {
		res.MaxEstimate = est
	} else {
		res.MaxEstimate = stats.MaxEstimate{Max: maxOf(values), SampleMax: maxOf(values)}
	}
	return res, nil
}

func minInfluence(influence []float64, members []graph.NodeID) float64 {
	min := influence[members[0]]
	for _, v := range members[1:] {
		if influence[v] < min {
			min = influence[v]
		}
	}
	return min
}

func maxOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	max := values[0]
	for _, x := range values[1:] {
		if x > max {
			max = x
		}
	}
	return max
}
