package sea

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/kcore"
)

// attrMetric builds the default test metric over a generated dataset.
func attrMetric(t testing.TB, d *dataset.Generated) (*attr.Metric, error) {
	t.Helper()
	m, err := attr.NewMetric(d.Graph, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return m, nil
}

// twoCliquesGraph: K4 on {0..3} and K4 on {0,4,5,6} sharing q=0.
func twoCliquesGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(7, 0)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	group := []graph.NodeID{0, 4, 5, 6}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(group[i], group[j])
		}
	}
	return b.MustBuild()
}

func TestInfluentialSearchPicksHighInfluenceClique(t *testing.T) {
	g := twoCliquesGraph(t)
	// Clique {0,4,5,6} is uniformly more influential.
	influence := []float64{5, 1, 1, 1, 8, 9, 7}
	res, err := InfluentialSearch(g, 0, 3, influence)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinInfluence != 5 {
		t.Errorf("MinInfluence = %v, want 5 (the query's own score)", res.MinInfluence)
	}
	want := map[graph.NodeID]bool{0: true, 4: true, 5: true, 6: true}
	if len(res.Community) != 4 {
		t.Fatalf("community = %v, want the high-influence clique", res.Community)
	}
	for _, v := range res.Community {
		if !want[v] {
			t.Errorf("low-influence node %d kept", v)
		}
	}
	if res.MaxEstimate.Max < 9 {
		t.Errorf("EVT max = %v, want ≥ the observed 9", res.MaxEstimate.Max)
	}
}

func TestInfluentialSearchErrors(t *testing.T) {
	g := twoCliquesGraph(t)
	if _, err := InfluentialSearch(g, 0, 3, []float64{1, 2}); err == nil {
		t.Error("accepted short influence vector")
	}
	if _, err := InfluentialSearch(g, 0, 6, make([]float64, 7)); !errors.Is(err, ErrNoCommunity) {
		t.Errorf("err = %v, want ErrNoCommunity", err)
	}
}

// bruteMaxMin computes the max-min-influence connected k-core by brute force.
func bruteMaxMin(g *graph.Graph, q graph.NodeID, k int, influence []float64) float64 {
	n := g.NumNodes()
	best := math.Inf(-1)
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<uint(q)) == 0 {
			continue
		}
		var members []graph.NodeID
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				members = append(members, graph.NodeID(v))
			}
		}
		if len(members) < k+1 || !kcore.InKCoreSet(g, members, k) {
			continue
		}
		if !connectedThrough(g, members, q) {
			continue
		}
		mi := influence[members[0]]
		for _, v := range members[1:] {
			if influence[v] < mi {
				mi = influence[v]
			}
		}
		if mi > best {
			best = mi
		}
	}
	return best
}

func connectedThrough(g *graph.Graph, members []graph.NodeID, q graph.NodeID) bool {
	in := map[graph.NodeID]bool{}
	for _, v := range members {
		in[v] = true
	}
	seen := map[graph.NodeID]bool{q: true}
	stack := []graph.NodeID{q}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(v) {
			if in[u] && !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(members)
}

func TestPropertyInfluentialMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		b := graph.NewBuilder(n, 0)
		for i := 0; i < n-1; i++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		}
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		q := graph.NodeID(rng.Intn(n))
		k := 1 + rng.Intn(2)
		influence := make([]float64, n)
		for i := range influence {
			influence[i] = float64(rng.Intn(20))
		}
		res, err := InfluentialSearch(g, q, k, influence)
		if errors.Is(err, ErrNoCommunity) {
			return math.IsInf(bruteMaxMin(g, q, k, influence), -1)
		}
		if err != nil {
			return false
		}
		return res.MinInfluence == bruteMaxMin(g, q, k, influence)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBatchSearchMatchesSequential(t *testing.T) {
	d := testDataset(t)
	m, _ := attrMetric(t, d)
	opts := DefaultOptions()
	queries := d.QueryNodes(8, opts.K, 77)
	batch, err := BatchSearch(d.Graph, m, queries, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch results = %d, want %d", len(batch), len(queries))
	}
	for i, br := range batch {
		if br.Query != queries[i] {
			t.Fatalf("result %d out of order", i)
		}
		o := opts
		o.Seed = opts.Seed + int64(i)*1_000_003
		seq, err := Search(d.Graph, m, queries[i], o)
		if (err != nil) != (br.Err != nil) {
			t.Fatalf("query %d: err mismatch %v vs %v", i, err, br.Err)
		}
		if err != nil {
			continue
		}
		if seq.Delta != br.Result.Delta || len(seq.Community) != len(br.Result.Community) {
			t.Errorf("query %d: batch differs from sequential (δ %v vs %v)",
				i, br.Result.Delta, seq.Delta)
		}
	}
}

func TestBatchSearchValidation(t *testing.T) {
	d := testDataset(t)
	m, _ := attrMetric(t, d)
	bad := DefaultOptions()
	bad.K = 0
	if _, err := BatchSearch(d.Graph, m, d.QueryNodes(2, 4, 1), bad, 2); err == nil {
		t.Error("invalid options accepted")
	}
	other := testDataset(t)
	om, _ := attrMetric(t, other)
	if _, err := BatchSearch(d.Graph, om, d.QueryNodes(2, 4, 1), DefaultOptions(), 2); err == nil {
		t.Error("metric bound to another graph accepted")
	}
}
