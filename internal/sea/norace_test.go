//go:build !race

package sea

// Without the race detector, timing assertions run at full strictness.
const cancelBudgetScale = 1
