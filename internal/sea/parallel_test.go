package sea

import (
	"reflect"
	"testing"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// stripTimes zeroes the wall-clock fields of a Result so two runs can be
// compared for semantic identity (times legitimately differ run to run).
func stripTimes(r *Result) *Result {
	c := *r
	c.Steps = StepTimes{}
	c.Rounds = append([]Round(nil), r.Rounds...)
	for i := range c.Rounds {
		c.Rounds[i].Time = 0
	}
	return &c
}

// TestParallelEstimationMatchesSerial is the determinism-under-parallelism
// contract at the whole-search level: with the parallel peel scan forced on
// (threshold 1) and the BLB worker pool at various widths, a SEA search
// must return a Result identical to the fully serial execution for every
// fixed seed — community, δ, CI, rounds trace, sample sizes, everything but
// wall times.
func TestParallelEstimationMatchesSerial(t *testing.T) {
	d, err := dataset.Generate(dataset.Spec{
		Name: "par", Nodes: 600, MinCommunity: 12, MaxCommunity: 30,
		IntraDegree: 8, InterDegree: 0.6,
		TokensPerNode: 4, PoolSize: 5, Vocab: 120, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := attr.NewMetric(d.Graph, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q := d.QueryNodes(1, 5, 4)[0]
	dist := m.QueryDist(q)

	opts := DefaultOptions()
	opts.K = 5
	opts.MaxRounds = 3

	defer stats.SetBLBWorkers(0)
	oldPeel := peelScanMinParallel
	defer func() { peelScanMinParallel = oldPeel }()

	for _, seed := range []int64{1, 7, 23} {
		opts.Seed = seed

		stats.SetBLBWorkers(1)
		peelScanMinParallel = 1 << 30 // serial scan
		serial, serr := SearchWithDist(d.Graph, dist, q, opts)

		for _, workers := range []int{2, 8} {
			stats.SetBLBWorkers(workers)
			peelScanMinParallel = 1 // force the parallel scan on every peel
			par, perr := SearchWithDist(d.Graph, dist, q, opts)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("seed %d workers %d: error mismatch: %v vs %v", seed, workers, serr, perr)
			}
			if serr != nil {
				continue
			}
			if !reflect.DeepEqual(stripTimes(serial), stripTimes(par)) {
				t.Fatalf("seed %d workers %d:\nserial: %+v\nparallel: %+v",
					seed, workers, stripTimes(serial), stripTimes(par))
			}
		}
	}
}

// TestSearchDeterministicAcrossRepeats guards the fixed-seed reproducibility
// the paper-reproduction contract depends on: same inputs, same Result.
func TestSearchDeterministicAcrossRepeats(t *testing.T) {
	d, err := dataset.Generate(dataset.Spec{
		Name: "det", Nodes: 400, MinCommunity: 10, MaxCommunity: 24,
		IntraDegree: 7, InterDegree: 0.5,
		TokensPerNode: 3, PoolSize: 5, Vocab: 90, NoiseProb: 0.1,
		NumDim: 1, NumSigma: 0.05, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := attr.NewMetric(d.Graph, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q := d.QueryNodes(1, 4, 8)[0]
	dist := m.QueryDist(q)
	opts := DefaultOptions()
	opts.K = 4
	opts.Seed = 17

	first, err := SearchWithDist(d.Graph, dist, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := SearchWithDist(d.Graph, dist, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripTimes(first), stripTimes(again)) {
			t.Fatalf("repeat %d diverged:\nfirst: %+v\nagain: %+v", i, stripTimes(first), stripTimes(again))
		}
	}
}
