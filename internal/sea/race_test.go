//go:build race

package sea

// The race detector instruments every memory access, dilating wall time by
// roughly an order of magnitude; timing assertions scale with it. The
// strict bound stays enforced by the regular (non-race) test run.
const cancelBudgetScale = 12
