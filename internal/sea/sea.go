// Package sea implements the paper's primary contribution: the index-free
// Sampling-Estimation-based Approximate community search (SEA, §V) with a
// runtime accuracy guarantee, and its extensions to size-bounded search
// (§VI-B) and the k-truss model (§VI-C). Heterogeneous graphs (§VI-A) are
// supported through the target-node projection in internal/hetgraph.
//
// The pipeline follows Figure 4 of the paper:
//
//  1. Sampling (S1): determine the minimum neighborhood size |Gq| from the
//     Hoeffding bound (Theorem 10), build Gq best-first around q, draw an
//     attribute-aware weighted sample S, and extract the maximal connected
//     k-core (or k-truss) of the induced subgraph Gq[S].
//  2. Estimation (S2): estimate δ of the candidate with a Bag of Little
//     Bootstraps confidence interval; terminate early once the Theorem-11
//     stopping rule ε ≤ δ*·e/(1+e) holds; otherwise greedily peel the most
//     dissimilar node and re-estimate.
//  3. Incremental sampling (S3): if no candidate satisfies the rule, enlarge
//     the sample by the error-driven |ΔS| of Eq. 12 and repeat.
package sea

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/attr"
	"repro/internal/cohesive"
	"repro/internal/cserr"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/truss"
	"repro/internal/ws"
)

// Model selects the structure-cohesiveness model.
type Model int

// Supported community models.
const (
	KCore  Model = iota // connected k-core (default)
	KTruss              // connected k-truss (§VI-C)
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case KCore:
		return "k-core"
	case KTruss:
		return "k-truss"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// MarshalText renders the model in the wire form ("core" or "truss") used by
// the HTTP API and the CLI, so a Model round-trips through JSON.
func (m Model) MarshalText() ([]byte, error) {
	switch m {
	case KCore:
		return []byte("core"), nil
	case KTruss:
		return []byte("truss"), nil
	default:
		return nil, fmt.Errorf("sea: unknown model %d", int(m))
	}
}

// UnmarshalText parses the wire form of a model. The empty string selects
// the default (k-core); "core"/"k-core" and "truss"/"k-truss" are accepted.
func (m *Model) UnmarshalText(text []byte) error {
	switch string(text) {
	case "", "core", "k-core":
		*m = KCore
	case "truss", "k-truss":
		*m = KTruss
	default:
		return cserr.Invalidf("unknown model %q (want core or truss)", text)
	}
	return nil
}

// Options configures a SEA search. The zero value is not valid; start from
// DefaultOptions.
type Options struct {
	K          int     // structural parameter of the community model
	ErrorBound float64 // e: user-desired relative error bound
	Confidence float64 // 1−α for the confidence interval
	Lambda     float64 // initial sampling fraction of |Gq|
	Eps        float64 // ϵ for the Hoeffding bound (Theorem 10)
	Beta       float64 // β: 1−β is the containment probability (Theorem 10)
	Model      Model
	// SizeLo and SizeHi, when SizeHi > 0, activate size-bounded search
	// (§VI-B): the returned community has between SizeLo and SizeHi nodes.
	SizeLo, SizeHi int
	BLB            stats.BLBConfig
	// MaxRounds caps the sampling→estimation→incremental-sampling loop.
	// The paper observes convergence within 2 rounds, 5 in the worst case.
	MaxRounds int
	// NoRefine stops the greedy search at the FIRST candidate satisfying
	// Theorem 11, the paper's literal stopping rule. The default (refine)
	// keeps peeling and returns the best satisfying candidate, which is what
	// makes SEA's δ track the exact optimum as in Figure 5(a); the
	// Theorem-11 guarantee holds either way. See DESIGN.md.
	NoRefine bool
	Seed     int64
}

// DefaultOptions mirrors the paper's defaults (§VII-A): k=4, e=2%,
// 1−α = 95%, λ=0.2, ϵ=0.05, 1−β=95%.
func DefaultOptions() Options {
	return Options{
		K:          4,
		ErrorBound: 0.02,
		Confidence: 0.95,
		Lambda:     0.2,
		Eps:        0.05,
		Beta:       0.05,
		Model:      KCore,
		BLB:        stats.DefaultBLB(),
		MaxRounds:  8,
		Seed:       1,
	}
}

// Validate reports option errors. Every error wraps cserr.ErrInvalidRequest.
func (o Options) Validate() error {
	if o.K < 1 {
		return cserr.Invalidf("sea: K must be ≥ 1, got %d", o.K)
	}
	if o.ErrorBound <= 0 || o.ErrorBound >= 1 {
		return cserr.Invalidf("sea: ErrorBound %v outside (0,1)", o.ErrorBound)
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return cserr.Invalidf("sea: Confidence %v outside (0,1)", o.Confidence)
	}
	if o.Lambda <= 0 || o.Lambda > 1 {
		return cserr.Invalidf("sea: Lambda %v outside (0,1]", o.Lambda)
	}
	if o.Eps <= 0 {
		return cserr.Invalidf("sea: Eps must be positive, got %v", o.Eps)
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		return cserr.Invalidf("sea: Beta %v outside (0,1)", o.Beta)
	}
	// Negative bounds are rejected outright — a negative SizeLo or SizeHi
	// with the other side zero previously slipped past the bounded-range
	// check below and silently behaved as "unbounded".
	if o.SizeLo < 0 || o.SizeHi < 0 {
		return cserr.Invalidf("sea: size bound [%d,%d] negative", o.SizeLo, o.SizeHi)
	}
	if o.SizeHi > 0 && (o.SizeLo < 1 || o.SizeLo > o.SizeHi) {
		return cserr.Invalidf("sea: size bound [%d,%d] invalid", o.SizeLo, o.SizeHi)
	}
	if o.MaxRounds < 1 {
		return cserr.Invalidf("sea: MaxRounds must be ≥ 1, got %d", o.MaxRounds)
	}
	if err := o.BLB.Validate(); err != nil {
		return cserr.Invalidf("%v", err)
	}
	return nil
}

// StepTimes records per-step wall time: S1 sampling-based maximal structure
// finding, S2 BLB estimation, S3 error-based incremental sampling.
type StepTimes struct {
	Sampling    time.Duration // S1
	Estimation  time.Duration // S2
	Incremental time.Duration // S3
}

// Round traces one sampling-estimation round for the Table-VI case study.
type Round struct {
	Round  int           // 1-based round number
	Delta  float64       // δ* of the best candidate estimated this round
	MoE    float64       // its margin of error ε
	DeltaS int           // additional samples drawn before this round (0 for round 1)
	Time   time.Duration // wall time of the round
}

// Result is the outcome of a SEA search.
type Result struct {
	Community  []graph.NodeID // node IDs in the input graph
	Delta      float64        // δ* of the community
	CI         stats.CI       // confidence interval for δ
	Satisfied  bool           // Theorem-11 stopping rule achieved
	Rounds     []Round        // per-round trace
	Steps      StepTimes
	GqSize     int // |Gq| population size
	SampleSize int // final |S|
}

// ErrNoCommunity is returned when no community satisfying the structural
// (and size) constraints exists around q. It is the shared sentinel of
// internal/cserr, so errors.Is matches it across every search method.
var ErrNoCommunity = cserr.ErrNoCommunity

// Search runs SEA on g for query node q using metric m.
func Search(g graph.CSR, m *attr.Metric, q graph.NodeID, opts Options) (*Result, error) {
	return SearchContext(context.Background(), g, m, q, opts)
}

// SearchContext is Search under a context: the sampling-estimation round
// loop and the greedy peeling both check ctx and stop promptly when it is
// cancelled. An interrupted search returns the best candidate found so far
// (nil when none exists yet) together with an error wrapping ctx's error.
func SearchContext(ctx context.Context, g graph.CSR, m *attr.Metric, q graph.NodeID, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	dist := m.QueryDist(q)
	return SearchWithDistContext(ctx, g, dist, q, opts)
}

// SearchWithDist is Search with a precomputed f(·,q) vector, letting callers
// amortize the distance computation across runs.
func SearchWithDist(g graph.CSR, dist []float64, q graph.NodeID, opts Options) (*Result, error) {
	return SearchWithDistContext(context.Background(), g, dist, q, opts)
}

// SearchWithDistContext is SearchWithDist under a context; see SearchContext
// for the cancellation contract.
func SearchWithDistContext(ctx context.Context, g graph.CSR, dist []float64, q graph.NodeID, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &seaRun{ctx: ctx, g: g, dist: dist, q: q, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	s.w = ws.Get()
	defer s.w.Release()
	return s.run()
}

type seaRun struct {
	ctx  context.Context
	g    graph.CSR
	dist []float64
	q    graph.NodeID
	opts Options
	rng  *rand.Rand

	// w is the pooled scratch substrate threaded through every hot loop:
	// stamped visited/membership sets, the frontier heap, sampling keys,
	// the induced-CSR builder, and the round loop's own population/sample/
	// candidate buffers — so steady-state query traffic runs the whole
	// sampling→estimation→incremental loop without per-round allocation.
	w        *ws.Workspace
	identity []graph.NodeID // lazily-built identity orig-mapping

	res Result
}

// identityMap returns the cached identity node mapping (orig[i] = i) used
// when a maintainer runs on the full graph rather than an induced sample.
func (s *seaRun) identityMap() []graph.NodeID {
	if len(s.identity) != s.g.NumNodes() {
		s.identity = make([]graph.NodeID, s.g.NumNodes())
		for i := range s.identity {
			s.identity[i] = graph.NodeID(i)
		}
	}
	return s.identity
}

// interrupted builds the cancelled-search return: the best candidate found
// so far (nil when none) with the context's error wrapped.
func (s *seaRun) interrupted() (*Result, error) {
	err := cserr.Interruptedf(s.ctx.Err(), "sea: search interrupted")
	if s.res.Community == nil {
		return nil, err
	}
	return &s.res, err
}

// minGqSize applies Theorem 10 for the active model / size bound.
func (s *seaRun) minGqSize() (int, error) {
	n := s.g.NumNodes()
	switch {
	case s.opts.SizeHi > 0:
		return stats.MinGqSizeSizeBounded(s.opts.Eps, s.opts.Beta, s.opts.SizeLo, n)
	case s.opts.Model == KTruss:
		return stats.MinGqSizeTruss(s.opts.Eps, s.opts.Beta, s.opts.K, n)
	default:
		return stats.MinGqSizeCore(s.opts.Eps, s.opts.Beta, s.opts.K, n)
	}
}

func (s *seaRun) run() (*Result, error) {
	t0 := time.Now()
	minGq, err := s.minGqSize()
	if err != nil {
		return nil, err
	}
	s.w.Gq = sampling.BuildGqInto(s.w.Gq[:0], s.g, s.q, s.dist, minGq, s.w)
	gq := s.w.Gq
	s.res.GqSize = len(gq)
	if s.ctx.Err() != nil {
		return s.interrupted()
	}
	s.w.Probs = sampling.ProbabilitiesInto(s.w.Probs[:0], gq, s.dist)
	probs := s.w.Probs

	sampleSize := int(s.opts.Lambda * float64(len(gq)))
	if sampleSize < s.opts.K+1 {
		sampleSize = s.opts.K + 1
	}
	sample := sampling.WeightedSampleInto(s.w.Sample[:0], gq, probs, sampleSize, s.q, s.rng, s.w)
	s.w.Sample = sample // keep the backing array pooled even on round-1 exits
	s.res.Steps.Sampling += time.Since(t0)

	var lastMoE, lastTarget float64
	var lastBLBTotal int
	for round := 1; round <= s.opts.MaxRounds; round++ {
		if s.ctx.Err() != nil {
			return s.interrupted()
		}
		roundStart := time.Now()
		deltaS := 0
		if round > 1 {
			// S3: error-based incremental sampling (Eq. 12).
			t3 := time.Now()
			deltaS = stats.IncrementalSampleSize(lastMoE, lastTarget, lastBLBTotal, s.opts.BLB.Scale)
			if deltaS == 0 {
				// Structural miss: no candidate was even estimated, so
				// Eq. 12 has no error signal. Double the sample — small
				// samples of a sparse community rarely preserve its k-core.
				deltaS = len(sample)
			}
			sample = s.enlarge(gq, probs, sample, deltaS)
			s.w.Sample = sample // keep the grown backing array pooled
			s.res.Steps.Incremental += time.Since(t3)
			if len(sample) >= len(gq) && len(gq) < s.g.NumNodes() {
				// Sample exhausted the population: enlarge Gq itself.
				t1 := time.Now()
				minGq *= 2
				s.w.Gq = sampling.BuildGqInto(s.w.Gq[:0], s.g, s.q, s.dist, minGq, s.w)
				gq = s.w.Gq
				s.res.GqSize = len(gq)
				s.w.Probs = sampling.ProbabilitiesInto(s.w.Probs[:0], gq, s.dist)
				probs = s.w.Probs
				s.res.Steps.Sampling += time.Since(t1)
			}
		}
		s.res.SampleSize = len(sample)

		// S1: maximal connected structure within the induced sample.
		t1 := time.Now()
		maint, orig := s.buildMaintainer(sample)
		s.res.Steps.Sampling += time.Since(t1)
		if s.ctx.Err() != nil {
			return s.interrupted()
		}
		if maint == nil {
			// No structure containing q in this sample; try a larger one.
			lastMoE, lastTarget, lastBLBTotal = 0, 0, 0
			s.res.Rounds = append(s.res.Rounds, Round{Round: round, DeltaS: deltaS, Time: time.Since(roundStart)})
			continue
		}

		// S2: greedy candidate search with BLB estimation.
		t2 := time.Now()
		done, ci, moe, target, blbTotal := s.estimate(maint, orig)
		s.res.Steps.Estimation += time.Since(t2)
		s.res.Rounds = append(s.res.Rounds, Round{
			Round: round, Delta: ci.Center, MoE: ci.MoE, DeltaS: deltaS, Time: time.Since(roundStart),
		})
		if s.ctx.Err() != nil {
			return s.interrupted()
		}
		if done {
			s.res.CI = ci
			s.res.Satisfied = true
			return &s.res, nil
		}
		s.res.CI = ci
		lastMoE, lastTarget, lastBLBTotal = moe, target, blbTotal
		if len(sample) >= s.g.NumNodes() {
			// The sample already covers the whole graph; further rounds
			// cannot add information.
			break
		}
	}
	if s.res.Community == nil {
		// Last resort: sampling never preserved a qualifying structure
		// (typical when community cores are small relative to λ·|Gq|), so
		// run the greedy estimation directly on the maximal structure of
		// the full graph.
		members := s.maximalOnFullGraph()
		if members == nil {
			return nil, ErrNoCommunity
		}
		maint := s.maintainerOnFullGraph(members)
		if maint == nil {
			return nil, ErrNoCommunity
		}
		t2 := time.Now()
		done, ci, _, _, _ := s.estimate(maint, s.identityMap())
		s.res.Steps.Estimation += time.Since(t2)
		s.res.Satisfied = done
		s.res.CI = ci
		if s.ctx.Err() != nil {
			return s.interrupted()
		}
		if s.res.Community == nil {
			return nil, ErrNoCommunity
		}
	}
	if s.ctx.Err() != nil {
		return s.interrupted()
	}
	return &s.res, nil
}

// enlarge adds up to deltaS fresh weighted samples from gq to sample. The
// already-sampled set is an epoch-stamped workspace set and the rest pool
// lives in workspace scratch, so the incremental step is allocation-free in
// the steady state.
func (s *seaRun) enlarge(gq []graph.NodeID, probs []float64, sample []graph.NodeID, deltaS int) []graph.NodeID {
	in := &s.w.Member
	in.Reset(s.g.NumNodes())
	for _, v := range sample {
		in.Add(v)
	}
	restNodes := s.w.Nodes[:0]
	restProbs := s.w.Floats[:0]
	for i, v := range gq {
		if !in.Has(v) {
			restNodes = append(restNodes, v)
			restProbs = append(restProbs, probs[i])
		}
	}
	s.w.Nodes, s.w.Floats = restNodes[:0], restProbs[:0]
	if len(restNodes) == 0 {
		return sample
	}
	if deltaS > len(restNodes) {
		deltaS = len(restNodes)
	}
	return sampling.WeightedSampleInto(sample, restNodes, restProbs, deltaS, -1, s.rng, s.w)
}

// buildMaintainer extracts the maximal connected structure containing q from
// the subgraph induced by sample and wraps it in a maintenance structure.
// The returned orig maps induced IDs back to g's IDs. Returns nil when the
// sample contains no qualifying structure around q.
func (s *seaRun) buildMaintainer(sample []graph.NodeID) (cohesive.Maintainer, []graph.NodeID) {
	if len(sample) == s.g.NumNodes() {
		// The sample covers the whole graph: skip the induced-subgraph copy
		// and work on g directly with an identity mapping.
		members := s.maximalOnFullGraph()
		if members == nil {
			return nil, nil
		}
		maint := s.maintainerOnFullGraph(members)
		if maint == nil {
			return nil, nil
		}
		return maint, s.identityMap()
	}
	// Structure-only induced subgraph written into the workspace's
	// preallocated CSR arrays: the extraction paths below read only
	// adjacency, and attribute distances go through orig on the parent
	// graph. sub and orig stay valid until the next round's rebuild.
	sub, orig := graph.InducedStructureOf(s.g, sample, &s.w.Sub)
	var subQ graph.NodeID = -1
	for i, v := range orig {
		if v == s.q {
			subQ = graph.NodeID(i)
			break
		}
	}
	if subQ < 0 {
		return nil, nil
	}
	switch s.opts.Model {
	case KTruss:
		s.w.Members = s.w.Members[:0]
		members := truss.MaximalConnectedKTrussInto(s.w.Members, sub, subQ, s.opts.K, s.w)
		if members == nil {
			return nil, nil
		}
		s.w.Members = members[:0]
		maint, err := truss.NewSub(sub, subQ, s.opts.K, members)
		if err != nil {
			return nil, nil
		}
		return maint, orig
	default:
		s.w.Members = s.w.Members[:0]
		members := kcore.MaximalConnectedKCoreInto(s.w.Members, sub, subQ, s.opts.K, s.w)
		if members == nil {
			return nil, nil
		}
		s.w.Members = members[:0]
		maint, err := kcore.NewSub(sub, subQ, s.opts.K, members)
		if err != nil {
			return nil, nil
		}
		return maint, orig
	}
}

// minCommunitySize is the smallest admissible community (including q): the
// structural floor of the model, raised to the size bound's lower end.
func (s *seaRun) minCommunitySize() int {
	structural := s.opts.K + 1
	if s.opts.Model == KTruss {
		structural = s.opts.K
	}
	if s.opts.SizeHi > 0 && s.opts.SizeLo > structural {
		return s.opts.SizeLo
	}
	return structural
}

// estimate runs the greedy candidate search of §V-B on maint: estimate δ of
// the current candidate with BLB, peel the most dissimilar member, repeat.
//
// In the default mode the search walks the full greedy trajectory —
// estimating candidates at log-spaced sizes plus the final one — and keeps
// the candidate with the smallest δ*. done reports whether that candidate's
// CI satisfies Theorem 11; this is what makes SEA's δ track the exact
// optimum in the paper's Figure 5(a) (see DESIGN.md for why the paper's
// literal first-satisfy rule can return poor communities). Options.NoRefine
// selects the literal rule: stop at the FIRST candidate satisfying
// Theorem 11 and return it.
//
// On failure the best candidate's MoE/target/BLB-total feed Eq. 12.
func (s *seaRun) estimate(maint cohesive.Maintainer, orig []graph.NodeID) (done bool, best stats.CI, moe, target float64, blbTotal int) {
	members := s.w.Members[:0]
	values := s.w.Vals[:0]
	bestSet := s.w.Best[:0]
	haveBest := false
	defer func() {
		// Return the (possibly regrown) buffers to the workspace.
		s.w.Members, s.w.Vals, s.w.Best = members[:0], values[:0], bestSet[:0]
	}()
	minSize := s.minCommunitySize()
	nextEstimate := maint.Size() // estimate at log-spaced candidate sizes
	for {
		// Cancellation check once per peel iteration: each iteration already
		// scans the membership, so the ctx.Err() load is noise by comparison,
		// and it bounds the response to a cancelled context by one iteration.
		if s.ctx.Err() != nil {
			break
		}
		members = maint.Members(members[:0])
		if len(members) < minSize {
			break
		}
		withinSize := s.opts.SizeHi == 0 || len(members) <= s.opts.SizeHi
		atFloor := len(members) == minSize
		if withinSize && (len(members) <= nextEstimate || atFloor) {
			nextEstimate = len(members) * 49 / 50
			if nextEstimate >= len(members) {
				nextEstimate = len(members) - 1
			}
			values = values[:0]
			for _, v := range members {
				if orig[v] != s.q {
					values = append(values, s.dist[orig[v]])
				}
			}
			res, err := stats.BLB(values, blbConfig(s.opts), s.rng)
			if err == nil {
				ci := res.CI
				satisfied := ci.SatisfiesErrorBound(s.opts.ErrorBound)
				if s.opts.NoRefine {
					// Paper-literal rule: first satisfying candidate wins.
					best, haveBest = ci, true
					bestSet = append(bestSet[:0], members...)
					moe = ci.MoE
					target = stats.MoETarget(ci.Center, s.opts.ErrorBound)
					blbTotal = res.Total
					if satisfied {
						done = true
						break
					}
				} else if !haveBest || ci.Center < best.Center {
					best, haveBest = ci, true
					bestSet = append(bestSet[:0], members...)
					done = satisfied
					moe = ci.MoE
					target = stats.MoETarget(ci.Center, s.opts.ErrorBound)
					blbTotal = res.Total
				}
			}
		}
		// Peel the most dissimilar member (never q).
		worst := s.mostDissimilar(members, orig)
		if worst < 0 {
			break
		}
		removed, qAlive := maint.RemoveCascade(worst)
		if !qAlive || maint.Size() < minSize {
			maint.Restore(removed)
			break
		}
	}
	if haveBest {
		s.keepCandidateInduced(bestSet, orig)
	}
	return done, best, moe, target, blbTotal
}

// peelScanMinParallel is the candidate size above which the per-peel
// most-dissimilar scan fans out over a bounded worker pool. Package-level
// so tests can force the parallel path on small fixtures and prove it
// byte-identical to the serial scan.
var peelScanMinParallel = 1 << 13

// mostDissimilar returns the member with the maximal f(·,q), never q
// itself, or -1 when only q remains (or the context is cancelled mid-scan;
// the peel loop's own ctx check classifies that). The serial scan keeps the
// FIRST maximal member; the parallel scan (ws.ForRange over contiguous
// chunks) preserves that exactly — each chunk keeps its first chunk-local
// maximum and chunks merge in index order under a strict greater-than — so
// the peel sequence (and therefore the whole Result) is identical whatever
// the worker count.
func (s *seaRun) mostDissimilar(members []graph.NodeID, orig []graph.NodeID) graph.NodeID {
	n := len(members)
	if n < peelScanMinParallel || ws.MaxWorkers() <= 1 {
		// Closure-free serial fast path: the peel loop calls this once per
		// iteration.
		worst, _ := s.scanWorst(members, orig, 0, n)
		return worst
	}
	type chunkBest struct {
		lo int
		v  graph.NodeID
		d  float64
	}
	results := make([]chunkBest, 0, ws.MaxWorkers())
	var mu sync.Mutex
	if err := ws.ForRange(s.ctx, n, peelScanMinParallel, func(lo, hi int) {
		v, d := s.scanWorst(members, orig, lo, hi)
		mu.Lock()
		results = append(results, chunkBest{lo, v, d})
		mu.Unlock()
	}); err != nil {
		return -1
	}
	slices.SortFunc(results, func(a, b chunkBest) int { return a.lo - b.lo })
	var worst graph.NodeID = -1
	worstD := -1.0
	for _, r := range results {
		if r.v >= 0 && r.d > worstD {
			worstD = r.d
			worst = r.v
		}
	}
	return worst
}

// scanWorst is the serial most-dissimilar scan over members[lo:hi].
func (s *seaRun) scanWorst(members []graph.NodeID, orig []graph.NodeID, lo, hi int) (worst graph.NodeID, worstD float64) {
	worst, worstD = -1, -1.0
	for _, v := range members[lo:hi] {
		if orig[v] == s.q {
			continue
		}
		if d := s.dist[orig[v]]; d > worstD {
			worstD = d
			worst = v
		}
	}
	return worst, worstD
}

// blbConfig clones the BLB options with the run's confidence level.
func blbConfig(o Options) stats.BLBConfig {
	cfg := o.BLB
	cfg.Confidence = o.Confidence
	return cfg
}

// keepCandidateInduced records the candidate (in induced IDs) as the current
// best community, translating back to graph IDs.
func (s *seaRun) keepCandidateInduced(members []graph.NodeID, orig []graph.NodeID) {
	out := make([]graph.NodeID, len(members))
	for i, v := range members {
		out[i] = orig[v]
	}
	s.keepCandidate(out)
}

func (s *seaRun) keepCandidate(members []graph.NodeID) {
	s.res.Community = members
	s.res.Delta = attr.Delta(s.dist, members, s.q)
}

// maximalOnFullGraph returns the maximal connected structure on the entire
// graph, the last-resort fallback when sampling never found one.
func (s *seaRun) maximalOnFullGraph() []graph.NodeID {
	if s.opts.Model == KTruss {
		return truss.MaximalConnectedKTruss(s.g, s.q, s.opts.K)
	}
	return kcore.MaximalConnectedKCore(s.g, s.q, s.opts.K)
}

// maintainerOnFullGraph wraps members (a maximal structure of the full
// graph) in a maintenance structure, or returns nil on failure.
func (s *seaRun) maintainerOnFullGraph(members []graph.NodeID) cohesive.Maintainer {
	if s.opts.Model == KTruss {
		m, err := truss.NewSub(s.g, s.q, s.opts.K, members)
		if err != nil {
			return nil
		}
		return m
	}
	m, err := kcore.NewSub(s.g, s.q, s.opts.K, members)
	if err != nil {
		return nil
	}
	return m
}
