package sea

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/attr"
	"repro/internal/dataset"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/truss"
)

// testDataset builds a small planted-community graph shared by the tests.
func testDataset(t testing.TB) *dataset.Generated {
	t.Helper()
	d, err := dataset.Generate(dataset.Spec{
		Name: "test", Nodes: 400, MinCommunity: 12, MaxCommunity: 28,
		IntraDegree: 8, InterDegree: 0.8,
		TokensPerNode: 4, PoolSize: 5, Vocab: 80, NoiseProb: 0.15,
		NumDim: 2, NumSigma: 0.06, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []func(*Options){
		func(o *Options) { o.K = 0 },
		func(o *Options) { o.ErrorBound = 0 },
		func(o *Options) { o.ErrorBound = 1 },
		func(o *Options) { o.Confidence = 1 },
		func(o *Options) { o.Lambda = 0 },
		func(o *Options) { o.Lambda = 1.5 },
		func(o *Options) { o.Eps = 0 },
		func(o *Options) { o.Beta = 0 },
		func(o *Options) { o.SizeHi = 5; o.SizeLo = 9 },
		func(o *Options) { o.MaxRounds = 0 },
		func(o *Options) { o.BLB.Scale = 0.2 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestModelString(t *testing.T) {
	if KCore.String() != "k-core" || KTruss.String() != "k-truss" {
		t.Error("Model.String wrong")
	}
	if Model(9).String() == "" {
		t.Error("unknown model String empty")
	}
}

func TestSearchReturnsValidCore(t *testing.T) {
	d := testDataset(t)
	m, err := attr.NewMetric(d.Graph, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.K = 4
	for _, q := range d.QueryNodes(5, opts.K, 7) {
		res, err := Search(d.Graph, m, q, opts)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if !containsNode(res.Community, q) {
			t.Errorf("q=%d not in community", q)
		}
		if !kcore.InKCoreSet(d.Graph, res.Community, opts.K) {
			t.Errorf("q=%d: community is not a %d-core", q, opts.K)
		}
		if res.Delta < 0 || res.Delta > 1 {
			t.Errorf("q=%d: δ = %v out of range", q, res.Delta)
		}
		if len(res.Rounds) == 0 {
			t.Errorf("q=%d: no round trace", q)
		}
	}
}

func TestSearchTrussModel(t *testing.T) {
	d := testDataset(t)
	m, _ := attr.NewMetric(d.Graph, 0.5)
	opts := DefaultOptions()
	opts.K = 4
	opts.Model = KTruss
	found := 0
	for _, q := range d.QueryNodes(5, opts.K, 13) {
		res, err := Search(d.Graph, m, q, opts)
		if errors.Is(err, ErrNoCommunity) {
			continue
		}
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		found++
		if !containsNode(res.Community, q) {
			t.Errorf("q=%d not in community", q)
		}
		if !truss.InKTrussSet(d.Graph, res.Community, opts.K) {
			t.Errorf("q=%d: community is not a %d-truss", q, opts.K)
		}
	}
	if found == 0 {
		t.Error("no truss community found for any query")
	}
}

func TestSearchSizeBounded(t *testing.T) {
	d := testDataset(t)
	m, _ := attr.NewMetric(d.Graph, 0.5)
	opts := DefaultOptions()
	opts.K = 4
	opts.SizeLo, opts.SizeHi = 8, 14
	hit := 0
	for _, q := range d.QueryNodes(6, opts.K, 23) {
		res, err := Search(d.Graph, m, q, opts)
		if errors.Is(err, ErrNoCommunity) {
			continue
		}
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		hit++
		if len(res.Community) < opts.SizeLo || len(res.Community) > opts.SizeHi {
			t.Errorf("q=%d: |community| = %d outside [%d,%d]", q, len(res.Community), opts.SizeLo, opts.SizeHi)
		}
		if !kcore.InKCoreSet(d.Graph, res.Community, opts.K) {
			t.Errorf("q=%d: not a %d-core", q, opts.K)
		}
	}
	if hit == 0 {
		t.Error("size-bounded search never succeeded")
	}
}

func TestSearchDeterministicWithSeed(t *testing.T) {
	d := testDataset(t)
	m, _ := attr.NewMetric(d.Graph, 0.5)
	opts := DefaultOptions()
	q := d.QueryNodes(1, opts.K, 3)[0]
	r1, err := Search(d.Graph, m, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Search(d.Graph, m, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Delta != r2.Delta || len(r1.Community) != len(r2.Community) {
		t.Errorf("same seed, different results: δ %v vs %v, size %d vs %d",
			r1.Delta, r2.Delta, len(r1.Community), len(r2.Community))
	}
}

// TestRelativeErrorBound is the headline guarantee check: on graphs small
// enough for the exact algorithm, SEA's δ* must be within the error bound of
// the exact δ in the vast majority of runs (the guarantee is probabilistic
// at confidence 1−α).
func TestRelativeErrorBound(t *testing.T) {
	d, err := dataset.Generate(dataset.Spec{
		Name: "tiny", Nodes: 150, MinCommunity: 10, MaxCommunity: 18,
		IntraDegree: 7, InterDegree: 0.3,
		TokensPerNode: 4, PoolSize: 5, Vocab: 50, NoiseProb: 0.1,
		NumDim: 2, NumSigma: 0.05, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := attr.NewMetric(d.Graph, 0.5)
	opts := DefaultOptions()
	opts.K = 6
	opts.ErrorBound = 0.05
	within := 0
	total := 0
	for _, q := range d.QueryNodes(6, opts.K, 31) {
		dist := m.QueryDist(q)
		// A budgeted exact search: with all prunings and these community
		// sizes the optimum is reached well within the budget.
		ex, err := exact.Search(d.Graph, q, opts.K, dist, exact.Config{
			PruneDuplicates: true, PruneUnnecessary: true, PruneUnpromising: true,
			MaxStates: 60_000,
		})
		if errors.Is(err, exact.ErrNoCommunity) {
			continue
		}
		res, err := SearchWithDist(d.Graph, dist, q, opts)
		if errors.Is(err, ErrNoCommunity) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		total++
		if ex.Delta == 0 {
			continue
		}
		// The exact reference is budgeted, so SEA beating it counts as
		// within-bound too.
		rel := (res.Delta - ex.Delta) / ex.Delta
		if rel <= opts.ErrorBound+1e-9 {
			within++
		}
	}
	if total == 0 {
		t.Fatal("no query produced both exact and approximate results")
	}
	if within*10 < total*6 { // the guarantee is probabilistic at 1−α
		t.Errorf("only %d/%d runs within the error bound", within, total)
	}
}

func TestStepTimesAndSampleSizes(t *testing.T) {
	d := testDataset(t)
	m, _ := attr.NewMetric(d.Graph, 0.5)
	opts := DefaultOptions()
	q := d.QueryNodes(1, opts.K, 5)[0]
	res, err := Search(d.Graph, m, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.GqSize <= 0 || res.SampleSize <= 0 {
		t.Errorf("sizes not populated: Gq=%d S=%d", res.GqSize, res.SampleSize)
	}
	if res.Steps.Sampling <= 0 {
		t.Error("sampling time not recorded")
	}
}

func TestPropertyCommunityValidity(t *testing.T) {
	d := testDataset(t)
	m, _ := attr.NewMetric(d.Graph, 0.5)
	dist := map[graph.NodeID][]float64{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := DefaultOptions()
		opts.K = 3 + rng.Intn(4)
		opts.Seed = rng.Int63()
		opts.ErrorBound = 0.01 + rng.Float64()*0.2
		q := d.QueryNodes(1, opts.K, rng.Int63())[0]
		dv, ok := dist[q]
		if !ok {
			dv = m.QueryDist(q)
			dist[q] = dv
		}
		res, err := SearchWithDist(d.Graph, dv, q, opts)
		if errors.Is(err, ErrNoCommunity) {
			return true
		}
		if err != nil {
			return false
		}
		if !containsNode(res.Community, q) {
			return false
		}
		if !kcore.InKCoreSet(d.Graph, res.Community, opts.K) {
			return false
		}
		// δ must equal the recomputed attribute distance.
		return math.Abs(res.Delta-attr.Delta(dv, res.Community, q)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ringLattice builds the slow-search workload shared by the cancellation
// tests: a circulant graph where every node links to its d successors, so
// the whole graph is one big connected k-core whose greedy peeling walks
// thousands of iterations.
func ringLattice(t testing.TB, n, d int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		for j := 1; j <= d; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID((i+j)%n))
		}
	}
	return b.MustBuild()
}

// slowOpts makes a single SEA round walk the full greedy trajectory of the
// whole-graph community: sample everything, demand an unreachable error
// bound. On the 6000-node ring lattice this takes hundreds of milliseconds.
func slowOpts() Options {
	opts := DefaultOptions()
	opts.K = 4
	opts.Lambda = 1
	opts.Eps = 0.01
	opts.ErrorBound = 0.0001
	opts.MaxRounds = 1
	return opts
}

// TestSearchContextCancellation proves the acceptance criterion for SEA: a
// context cancelled mid-search returns promptly (well under 50ms) with the
// best candidate found so far and an error wrapping the context's error.
func TestSearchContextCancellation(t *testing.T) {
	const n = 6000
	g := ringLattice(t, n, 6)
	rng := rand.New(rand.NewSource(3))
	dist := make([]float64, n)
	for i := 1; i < n; i++ {
		dist[i] = rng.Float64()
	}

	ctx, cancel := context.WithCancel(context.Background())
	type answer struct {
		res *Result
		err error
	}
	done := make(chan answer, 1)
	go func() {
		res, err := SearchWithDistContext(ctx, g, dist, 0, slowOpts())
		done <- answer{res, err}
	}()
	time.Sleep(30 * time.Millisecond) // mid-peeling on this workload
	cancel()
	t0 := time.Now()
	var got answer
	select {
	case got = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled SEA search did not return")
	}
	if el, budget := time.Since(t0), cancelBudgetScale*50*time.Millisecond; el > budget {
		t.Fatalf("cancelled search took %v to return, want < %v", el, budget)
	}
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("want error wrapping context.Canceled, got %v", got.err)
	}
	if got.res != nil && len(got.res.Community) == 0 {
		t.Fatal("non-nil interrupted result must carry a community")
	}
}

// TestSearchContextAlreadyCancelled pins the fast path: a context that is
// already dead never starts sampling.
func TestSearchContextAlreadyCancelled(t *testing.T) {
	d := testDataset(t)
	m, err := attr.NewMetric(d.Graph, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.K = 2
	if _, err := SearchContext(ctx, d.Graph, m, d.QueryNodes(1, 2, 5)[0], opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
