package stats

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Bootstrap estimates the sampling distribution of the mean of values by r
// resamples with replacement and returns the estimated mean and the standard
// deviation of the resample means (σ_δ*), per Eq. 11.
func Bootstrap(values []float64, r int, rng *rand.Rand) (mean, sigma float64) {
	return bootstrapN(values, len(values), r, rng)
}

// bootstrapN draws r resamples of resampleN points (with replacement) from
// values and returns the mean and standard deviation of the resample means.
// BLB passes the ORIGINAL sample size as resampleN so each little subsample
// estimates the full-size estimator's spread (Kleiner et al., §3).
func bootstrapN(values []float64, resampleN, r int, rng *rand.Rand) (mean, sigma float64) {
	if len(values) == 0 || r <= 1 || resampleN == 0 {
		return 0, 0
	}
	return bootstrapNInto(values, resampleN, r, rng, make([]float64, r))
}

// bootstrapNInto is bootstrapN writing the resample means into the caller's
// buffer (len ≥ r), the reusable-scratch form the BLB workers drive.
func bootstrapNInto(values []float64, resampleN, r int, rng *rand.Rand, means []float64) (mean, sigma float64) {
	n := len(values)
	if n == 0 || r <= 1 || resampleN == 0 {
		return 0, 0
	}
	means = means[:r]
	for i := 0; i < r; i++ {
		sum := 0.0
		for j := 0; j < resampleN; j++ {
			sum += values[rng.Intn(n)]
		}
		means[i] = sum / float64(resampleN)
	}
	for _, m := range means {
		mean += m
	}
	mean /= float64(r)
	var ss float64
	for _, m := range means {
		d := m - mean
		ss += d * d
	}
	sigma = math.Sqrt(ss / float64(r-1))
	return mean, sigma
}

// BLBConfig configures a Bag of Little Bootstraps estimation.
type BLBConfig struct {
	Subsamples int     // s: number of little subsamples
	Scale      float64 // m ∈ [0.5,1): subsample size = n^m
	Resamples  int     // r: bootstrap resamples per subsample
	Confidence float64 // 1−α
}

// DefaultBLB mirrors the paper's defaults: s=10 subsamples of size n^0.6,
// r=50 resamples, 95% confidence.
func DefaultBLB() BLBConfig {
	return BLBConfig{Subsamples: 10, Scale: 0.6, Resamples: 50, Confidence: 0.95}
}

// Validate reports configuration errors.
func (c BLBConfig) Validate() error {
	if c.Subsamples < 1 {
		return fmt.Errorf("stats: BLB needs at least 1 subsample, got %d", c.Subsamples)
	}
	if c.Scale < 0.5 || c.Scale >= 1 {
		return fmt.Errorf("stats: BLB scale %v outside [0.5,1)", c.Scale)
	}
	if c.Resamples < 2 {
		return fmt.Errorf("stats: BLB needs at least 2 resamples, got %d", c.Resamples)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("stats: confidence %v outside (0,1)", c.Confidence)
	}
	return nil
}

// BLBResult is the outcome of a Bag of Little Bootstraps run.
type BLBResult struct {
	CI       CI  // point estimate and averaged MoE
	Total    int // |S_blb|: total points drawn across subsamples
	SubSize  int // size of each subsample
	Resample int // resamples per subsample
}

// blbWorkers overrides the BLB worker-pool size: 0 selects GOMAXPROCS,
// 1 forces serial execution. Parallel and serial execution are byte-
// identical by construction (see BLB), so this is a scheduling knob only.
var blbWorkers atomic.Int64

// SetBLBWorkers bounds the BLB subsample worker pool: n ≤ 0 restores the
// default (GOMAXPROCS), 1 forces serial execution. It exists for tests that
// prove the determinism contract and for operators pinning CPU budgets; the
// estimation result does not depend on it.
func SetBLBWorkers(n int) {
	if n < 0 {
		n = 0
	}
	blbWorkers.Store(int64(n))
}

// BLB runs the Bag of Little Bootstraps of §V-B over values: draw s
// subsamples of size n^m, bootstrap each to get an MoE ε_i = z_{α/2}·σ_i,
// and average. The returned CI centers on the mean of values (δ* is computed
// over the full candidate community, the bootstrap only sizes the MoE).
//
// The s bag resamples are embarrassingly parallel and run on a bounded
// worker pool (GOMAXPROCS workers, see SetBLBWorkers). Determinism is part
// of the contract: one child seed per subsample is drawn from rng serially
// up front, each subsample runs on its own rand.Rand, and the per-subsample
// MoEs are reduced in index order — so the result for a fixed seed is
// byte-identical whatever the worker count, including fully serial.
func BLB(values []float64, cfg BLBConfig, rng *rand.Rand) (BLBResult, error) {
	if err := cfg.Validate(); err != nil {
		return BLBResult{}, err
	}
	n := len(values)
	if n == 0 {
		return BLBResult{}, fmt.Errorf("stats: BLB over empty value set")
	}
	z, err := ZAlphaHalf(cfg.Confidence)
	if err != nil {
		return BLBResult{}, err
	}
	subSize := int(math.Ceil(math.Pow(float64(n), cfg.Scale)))
	if subSize < 2 {
		subSize = 2
	}
	if subSize > n {
		subSize = n
	}
	s := cfg.Subsamples
	// Ensure s·n^m ≤ n as in [50]; shrink s when the sample is tiny but keep
	// at least one subsample.
	if s*subSize > n && n/subSize >= 1 {
		s = n / subSize
	}
	if s < 1 {
		s = 1
	}

	// One derived seed per subsample, drawn serially from the master rng so
	// the schedule is independent of execution order.
	seeds := make([]int64, s)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	moes := make([]float64, s)

	workers := int(blbWorkers.Load())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s {
		workers = s
	}
	// Each worker owns one blbScratch, reused across every subsample it
	// processes: the subsample value buffer, the stamped index set of the
	// rejection sampler, and the resample-mean buffer all amortize to one
	// allocation per worker per call. Scratch never influences the draws,
	// so determinism is untouched.
	runSub := func(i int, sc *blbScratch) {
		sc.grow(n, subSize, cfg.Resamples)
		sr := rand.New(rand.NewSource(seeds[i]))
		sc.sampleWithoutReplacement(values, sr)
		// Resample at the ORIGINAL size n: each little subsample estimates
		// the spread of the full-sample mean, which is what makes BLB an
		// estimator-quality assessment rather than a subsample one.
		_, sigma := bootstrapNInto(sc.sub, n, cfg.Resamples, sr, sc.means)
		moes[i] = z * sigma
	}
	if workers <= 1 {
		var sc blbScratch
		for i := 0; i < s; i++ {
			runSub(i, &sc)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var sc blbScratch
				for {
					i := int(next.Add(1)) - 1
					if i >= s {
						return
					}
					runSub(i, &sc)
				}
			}()
		}
		wg.Wait()
	}

	sumMoE := 0.0
	for _, m := range moes {
		sumMoE += m
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	return BLBResult{
		CI:       CI{Center: mean, MoE: sumMoE / float64(s), Confidence: cfg.Confidence},
		Total:    s * subSize,
		SubSize:  subSize,
		Resample: cfg.Resamples,
	}, nil
}

// blbScratch is the per-worker reusable state of one BLB call: the
// subsample buffer, the epoch-stamped index set / index permutation of the
// without-replacement sampler, and the bootstrap resample-mean buffer.
type blbScratch struct {
	sub   []float64
	means []float64
	idx   []int32 // Fisher–Yates identity permutation, or epoch stamps
	epoch int32
}

// grow sizes the scratch for subsamples of subSize out of n values with r
// resamples; reallocation happens only when a dimension grows.
func (sc *blbScratch) grow(n, subSize, r int) {
	if cap(sc.sub) < subSize {
		sc.sub = make([]float64, subSize)
	}
	sc.sub = sc.sub[:subSize]
	if cap(sc.means) < r {
		sc.means = make([]float64, r)
	}
	sc.means = sc.means[:r]
	if len(sc.idx) < n {
		sc.idx = make([]int32, n)
		sc.epoch = 0
	}
}

// sampleWithoutReplacement fills sc.sub with distinct values drawn
// uniformly from values. For subsample sizes small relative to n it uses
// rejection sampling on the scratch's epoch-stamped index set (O(k)
// expected draws, no O(n) permutation or clearing); when the subsample
// covers a large fraction it switches to a partial Fisher–Yates over the
// scratch's index buffer. The method choice depends only on (n, k), so the
// draw schedule is deterministic for a fixed rng.
func (sc *blbScratch) sampleWithoutReplacement(values []float64, rng *rand.Rand) {
	n, k := len(values), len(sc.sub)
	if k*3 >= n {
		idx := sc.idx[:n]
		for i := range idx {
			idx[i] = int32(i)
		}
		for j := 0; j < k; j++ {
			t := j + rng.Intn(n-j)
			idx[j], idx[t] = idx[t], idx[j]
			sc.sub[j] = values[idx[j]]
		}
		// The buffer now holds permutation state, not stamps: force the
		// next rejection use to start from a clean epoch.
		sc.epoch = 0
		for i := range idx {
			idx[i] = 0
		}
		return
	}
	sc.epoch++
	if sc.epoch == math.MaxInt32 {
		for i := range sc.idx {
			sc.idx[i] = 0
		}
		sc.epoch = 1
	}
	seen := sc.idx[:n]
	for j := 0; j < k; {
		i := rng.Intn(n)
		if seen[i] == sc.epoch {
			continue
		}
		seen[i] = sc.epoch
		sc.sub[j] = values[i]
		j++
	}
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the sample standard deviation of values.
func StdDev(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}
