package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Bootstrap estimates the sampling distribution of the mean of values by r
// resamples with replacement and returns the estimated mean and the standard
// deviation of the resample means (σ_δ*), per Eq. 11.
func Bootstrap(values []float64, r int, rng *rand.Rand) (mean, sigma float64) {
	return bootstrapN(values, len(values), r, rng)
}

// bootstrapN draws r resamples of resampleN points (with replacement) from
// values and returns the mean and standard deviation of the resample means.
// BLB passes the ORIGINAL sample size as resampleN so each little subsample
// estimates the full-size estimator's spread (Kleiner et al., §3).
func bootstrapN(values []float64, resampleN, r int, rng *rand.Rand) (mean, sigma float64) {
	n := len(values)
	if n == 0 || r <= 1 || resampleN == 0 {
		return 0, 0
	}
	means := make([]float64, r)
	for i := 0; i < r; i++ {
		sum := 0.0
		for j := 0; j < resampleN; j++ {
			sum += values[rng.Intn(n)]
		}
		means[i] = sum / float64(resampleN)
	}
	for _, m := range means {
		mean += m
	}
	mean /= float64(r)
	var ss float64
	for _, m := range means {
		d := m - mean
		ss += d * d
	}
	sigma = math.Sqrt(ss / float64(r-1))
	return mean, sigma
}

// BLBConfig configures a Bag of Little Bootstraps estimation.
type BLBConfig struct {
	Subsamples int     // s: number of little subsamples
	Scale      float64 // m ∈ [0.5,1): subsample size = n^m
	Resamples  int     // r: bootstrap resamples per subsample
	Confidence float64 // 1−α
}

// DefaultBLB mirrors the paper's defaults: s=10 subsamples of size n^0.6,
// r=50 resamples, 95% confidence.
func DefaultBLB() BLBConfig {
	return BLBConfig{Subsamples: 10, Scale: 0.6, Resamples: 50, Confidence: 0.95}
}

// Validate reports configuration errors.
func (c BLBConfig) Validate() error {
	if c.Subsamples < 1 {
		return fmt.Errorf("stats: BLB needs at least 1 subsample, got %d", c.Subsamples)
	}
	if c.Scale < 0.5 || c.Scale >= 1 {
		return fmt.Errorf("stats: BLB scale %v outside [0.5,1)", c.Scale)
	}
	if c.Resamples < 2 {
		return fmt.Errorf("stats: BLB needs at least 2 resamples, got %d", c.Resamples)
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("stats: confidence %v outside (0,1)", c.Confidence)
	}
	return nil
}

// BLBResult is the outcome of a Bag of Little Bootstraps run.
type BLBResult struct {
	CI       CI  // point estimate and averaged MoE
	Total    int // |S_blb|: total points drawn across subsamples
	SubSize  int // size of each subsample
	Resample int // resamples per subsample
}

// BLB runs the Bag of Little Bootstraps of §V-B over values: draw s
// subsamples of size n^m, bootstrap each to get an MoE ε_i = z_{α/2}·σ_i,
// and average. The returned CI centers on the mean of values (δ* is computed
// over the full candidate community, the bootstrap only sizes the MoE).
func BLB(values []float64, cfg BLBConfig, rng *rand.Rand) (BLBResult, error) {
	if err := cfg.Validate(); err != nil {
		return BLBResult{}, err
	}
	n := len(values)
	if n == 0 {
		return BLBResult{}, fmt.Errorf("stats: BLB over empty value set")
	}
	z, err := ZAlphaHalf(cfg.Confidence)
	if err != nil {
		return BLBResult{}, err
	}
	subSize := int(math.Ceil(math.Pow(float64(n), cfg.Scale)))
	if subSize < 2 {
		subSize = 2
	}
	if subSize > n {
		subSize = n
	}
	s := cfg.Subsamples
	// Ensure s·n^m ≤ n as in [50]; shrink s when the sample is tiny but keep
	// at least one subsample.
	if s*subSize > n && n/subSize >= 1 {
		s = n / subSize
	}
	if s < 1 {
		s = 1
	}

	sub := make([]float64, subSize)
	sumMoE := 0.0
	total := 0
	for i := 0; i < s; i++ {
		// Subsample without replacement via partial Fisher-Yates on indices.
		// For small subSize relative to n, rejection sampling is cheaper and
		// allocation-free with a map only on collision-heavy cases.
		pick := rng.Perm(n)[:subSize]
		for j, idx := range pick {
			sub[j] = values[idx]
		}
		// Resample at the ORIGINAL size n: each little subsample estimates
		// the spread of the full-sample mean, which is what makes BLB an
		// estimator-quality assessment rather than a subsample one.
		_, sigma := bootstrapN(sub, n, cfg.Resamples, rng)
		sumMoE += z * sigma
		total += subSize
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	return BLBResult{
		CI:       CI{Center: mean, MoE: sumMoE / float64(s), Confidence: cfg.Confidence},
		Total:    total,
		SubSize:  subSize,
		Resample: cfg.Resamples,
	}, nil
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the sample standard deviation of values.
func StdDev(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}
