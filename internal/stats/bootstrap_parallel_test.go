package stats

import (
	"math/rand"
	"testing"
)

// TestBLBParallelIdenticalToSerial is the determinism-under-parallelism
// contract: for a fixed seed, BLB must return byte-identical results
// whatever the worker count, because the per-subsample rngs are derived
// serially up front and the MoE reduction is index-ordered.
func TestBLBParallelIdenticalToSerial(t *testing.T) {
	defer SetBLBWorkers(0)
	for _, n := range []int{5, 40, 400, 5000} {
		rng := rand.New(rand.NewSource(99))
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.Float64()
		}
		for _, seed := range []int64{1, 2, 42} {
			SetBLBWorkers(1)
			serial, err := BLB(values, DefaultBLB(), rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 16} {
				SetBLBWorkers(workers)
				par, err := BLB(values, DefaultBLB(), rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				if par != serial {
					t.Fatalf("n=%d seed=%d workers=%d: parallel %+v != serial %+v",
						n, seed, workers, par, serial)
				}
			}
		}
	}
}

// TestBLBMasterRNGAdvanceIsScheduleIndependent: the master rng must be
// advanced identically (s × Int63) whatever the execution, so callers that
// share the rng across successive BLB calls (the SEA peel loop does) stay
// deterministic too.
func TestBLBMasterRNGAdvanceIsScheduleIndependent(t *testing.T) {
	defer SetBLBWorkers(0)
	values := make([]float64, 300)
	src := rand.New(rand.NewSource(5))
	for i := range values {
		values[i] = src.Float64()
	}
	after := func(workers int) int64 {
		SetBLBWorkers(workers)
		rng := rand.New(rand.NewSource(7))
		if _, err := BLB(values, DefaultBLB(), rng); err != nil {
			t.Fatal(err)
		}
		return rng.Int63()
	}
	serialNext := after(1)
	for _, workers := range []int{2, 8} {
		if got := after(workers); got != serialNext {
			t.Fatalf("workers=%d advanced master rng differently: %d != %d", workers, got, serialNext)
		}
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	var sc blbScratch
	for _, k := range []int{1, 5, 30, 90, 100} {
		// Run twice per size so the stamped-set reuse path is exercised.
		for round := 0; round < 2; round++ {
			sc.grow(len(values), k, 2)
			sc.sampleWithoutReplacement(values, rng)
			seen := map[float64]bool{}
			for _, v := range sc.sub {
				if seen[v] {
					t.Fatalf("k=%d round=%d: duplicate value %v", k, round, v)
				}
				seen[v] = true
			}
		}
	}
}
