package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the Extreme Value Theory estimator the paper sketches
// in §VI-A for heterogeneous influential communities: estimating the MAX of
// a population from a sample via peaks-over-threshold. Exceedances over a
// high threshold are fitted to a Generalized Pareto Distribution with
// probability-weighted moments; for a bounded tail (ξ < 0) the distribution
// endpoint u − σ/ξ estimates the population maximum, otherwise a high
// quantile stands in.

// MaxEstimate is the outcome of an EVT max estimation.
type MaxEstimate struct {
	Max   float64 // estimated population maximum
	Xi    float64 // GPD shape parameter (ξ < 0 ⇒ bounded tail)
	Sigma float64 // GPD scale parameter
	// SampleMax is the largest observed value; Max ≥ SampleMax always.
	SampleMax float64
}

// EstimateMax fits a GPD to the exceedances of values over its (1−tailFrac)
// quantile and returns the estimated population maximum. tailFrac in (0,0.5]
// controls how much of the sample counts as tail (0.1 is a good default).
func EstimateMax(values []float64, tailFrac float64) (MaxEstimate, error) {
	if len(values) < 8 {
		return MaxEstimate{}, fmt.Errorf("stats: EstimateMax needs ≥ 8 values, got %d", len(values))
	}
	if tailFrac <= 0 || tailFrac > 0.5 {
		return MaxEstimate{}, fmt.Errorf("stats: tailFrac %v outside (0,0.5]", tailFrac)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sampleMax := sorted[len(sorted)-1]

	k := int(float64(len(sorted)) * tailFrac)
	if k < 4 {
		k = 4
	}
	u := sorted[len(sorted)-k-1] // threshold: (1−tailFrac) quantile
	exceed := make([]float64, 0, k)
	for _, v := range sorted[len(sorted)-k:] {
		if v > u {
			exceed = append(exceed, v-u)
		}
	}
	if len(exceed) < 2 {
		return MaxEstimate{Max: sampleMax, SampleMax: sampleMax}, nil
	}

	// Probability-weighted moments for the GPD (Hosking & Wallis 1987).
	// With b0 = E[X] and b1 estimating E[X·F(X)] via plotting positions,
	// α1 = E[X·(1−F(X))] = b0 − b1; the GPD moment ratios give the H&W
	// shape k = b0/α1 − 2 (ξ = −k) and scale σ = (1+k)·b0.
	sort.Float64s(exceed)
	n := float64(len(exceed))
	var b0, b1 float64
	for i, x := range exceed {
		b0 += x
		b1 += float64(i) / (n - 1) * x
	}
	b0 /= n
	b1 /= n
	alpha1 := b0 - b1
	if alpha1 <= 0 || b0 <= 0 {
		return MaxEstimate{Max: sampleMax, SampleMax: sampleMax}, nil
	}
	kHW := b0/alpha1 - 2
	sigma := (1 + kHW) * b0
	xi := -kHW

	est := MaxEstimate{Xi: xi, Sigma: sigma, SampleMax: sampleMax}
	if xi < 0 && sigma > 0 {
		// Bounded tail: the GPD endpoint estimates the population max.
		est.Max = u - sigma/xi
	} else {
		// Heavy or exponential tail: use the (1 − 1/(10n)) quantile of the
		// fitted GPD as a conservative max proxy.
		p := 1 - 1/(10*n)
		if xi == 0 || sigma <= 0 {
			est.Max = sampleMax
		} else {
			est.Max = u + sigma/xi*(math.Pow(1-p, -xi)-1)
		}
	}
	if est.Max < sampleMax {
		est.Max = sampleMax
	}
	return est, nil
}
