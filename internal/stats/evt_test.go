package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimateMaxBoundedTail(t *testing.T) {
	// Uniform(0, 10): bounded tail, the endpoint is 10. Sampling 500 points
	// gives a sample max near but below 10; EVT should push toward 10.
	rng := rand.New(rand.NewSource(4))
	values := make([]float64, 500)
	for i := range values {
		values[i] = rng.Float64() * 10
	}
	est, err := EstimateMax(values, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Max < est.SampleMax {
		t.Errorf("Max %v < SampleMax %v", est.Max, est.SampleMax)
	}
	if est.Max < 9.5 || est.Max > 11.5 {
		t.Errorf("EVT Max = %v, want ≈10 for Uniform(0,10)", est.Max)
	}
	if est.Xi >= 0.5 {
		t.Errorf("ξ = %v, expected a bounded-ish tail for the uniform", est.Xi)
	}
}

func TestEstimateMaxNeverBelowSampleMax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		values := make([]float64, 100)
		for i := range values {
			values[i] = rng.ExpFloat64()
		}
		est, err := EstimateMax(values, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if est.Max < est.SampleMax {
			t.Fatalf("trial %d: Max %v below sample max %v", trial, est.Max, est.SampleMax)
		}
		if math.IsNaN(est.Max) || math.IsInf(est.Max, 0) {
			t.Fatalf("trial %d: Max = %v", trial, est.Max)
		}
	}
}

func TestEstimateMaxValidation(t *testing.T) {
	if _, err := EstimateMax([]float64{1, 2, 3}, 0.1); err == nil {
		t.Error("accepted tiny sample")
	}
	many := make([]float64, 50)
	if _, err := EstimateMax(many, 0); err == nil {
		t.Error("accepted tailFrac 0")
	}
	if _, err := EstimateMax(many, 0.9); err == nil {
		t.Error("accepted tailFrac > 0.5")
	}
}

func TestEstimateMaxConstantValues(t *testing.T) {
	values := make([]float64, 40)
	for i := range values {
		values[i] = 7
	}
	est, err := EstimateMax(values, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if est.Max != 7 {
		t.Errorf("constant values: Max = %v, want 7", est.Max)
	}
}
