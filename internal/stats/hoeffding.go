package stats

import (
	"fmt"
	"math"
)

// MinPossibleWorlds returns the minimum number of possible worlds t required
// by Theorem 9 so that all m ground-truth nodes are contained in Gq with
// probability at least 1−β: t ≥ (2/ϵ²)·ln(m(n−m)/β).
func MinPossibleWorlds(eps, beta float64, m, n int) (int, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("stats: eps must be positive, got %v", eps)
	}
	if beta <= 0 || beta >= 1 {
		return 0, fmt.Errorf("stats: beta %v outside (0,1)", beta)
	}
	if m <= 0 || n <= m {
		return 0, fmt.Errorf("stats: need 0 < m < n, got m=%d n=%d", m, n)
	}
	t := 2 / (eps * eps) * math.Log(float64(m)*float64(n-m)/beta)
	if t < 1 {
		t = 1
	}
	return int(math.Ceil(t)), nil
}

// MinGqSizeCore returns the Theorem-10 minimum size of the neighborhood
// population Gq for the k-core model: (2/ϵ²)·ln((k+1)(n−k−1)/β) + 1, where a
// k-core has at least k+1 nodes. The result is clamped to n.
func MinGqSizeCore(eps, beta float64, k, n int) (int, error) {
	return minGqSize(eps, beta, k+1, n)
}

// MinGqSizeTruss is the k-truss variant of Theorem 10 (§VI-C): a k-truss has
// at least k nodes, so m = k.
func MinGqSizeTruss(eps, beta float64, k, n int) (int, error) {
	return minGqSize(eps, beta, k, n)
}

// MinGqSizeSizeBounded is the size-bounded variant (§VI-B): the community has
// at least l nodes, so m = l.
func MinGqSizeSizeBounded(eps, beta float64, l, n int) (int, error) {
	return minGqSize(eps, beta, l, n)
}

func minGqSize(eps, beta float64, m, n int) (int, error) {
	if m >= n {
		// The whole graph is needed; fall back to n.
		return n, nil
	}
	t, err := MinPossibleWorlds(eps, beta, m, n)
	if err != nil {
		return 0, err
	}
	size := t + 1
	if size > n {
		size = n
	}
	return size, nil
}

// IncrementalSampleSize implements Eq. 12: given the current MoE ε, its
// Theorem-11 target, the BLB subsample total |S_blb| and the BLB scale factor
// m ∈ [0.5,1), it returns the number of additional samples
// |ΔS| = |S_blb|·[(ε/target)^(2m) − 1], at least 1 when ε exceeds the target.
func IncrementalSampleSize(moe, target float64, blbTotal int, scale float64) int {
	if moe <= target || target <= 0 || blbTotal <= 0 {
		return 0
	}
	ratio := moe / target
	delta := float64(blbTotal) * (math.Pow(ratio, 2*scale) - 1)
	if delta < 1 {
		return 1
	}
	if delta > 1e9 {
		return 1 << 30
	}
	return int(math.Ceil(delta))
}
