// Package stats provides the statistical machinery behind the paper's
// accuracy guarantee: standard-normal quantiles for confidence intervals,
// the Hoeffding-inequality population bounds of §V-A (Theorems 9–10), the
// bootstrap and Bag of Little Bootstraps estimators of §V-B, and the
// Theorem-11 stopping rule together with the error-based incremental sample
// sizing of §V-C (Eq. 12).
package stats

import (
	"fmt"
	"math"
)

// NormalQuantile returns the p-quantile of the standard normal distribution
// (the inverse CDF), using Acklam's rational approximation; absolute error is
// below 1.15e-9 over (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// ZAlphaHalf returns z_{α/2}, the normal critical value with right-tail
// probability α/2, for a confidence level 1−α ∈ (0,1).
func ZAlphaHalf(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence level %v outside (0,1)", confidence)
	}
	alpha := 1 - confidence
	return NormalQuantile(1 - alpha/2), nil
}

// CI is a confidence interval δ* ± ε at a given confidence level.
type CI struct {
	Center     float64 // point estimate δ*
	MoE        float64 // margin of error ε (half-width)
	Confidence float64 // 1−α
}

// Lo returns the lower bound of the interval.
func (ci CI) Lo() float64 { return ci.Center - ci.MoE }

// Hi returns the upper bound of the interval.
func (ci CI) Hi() float64 { return ci.Center + ci.MoE }

// Covers reports whether x lies in the interval.
func (ci CI) Covers(x float64) bool { return x >= ci.Lo() && x <= ci.Hi() }

// String formats the interval like the paper: "0.123 ± 4e-3 (95%)".
func (ci CI) String() string {
	return fmt.Sprintf("%.4g ± %.2g (%.0f%%)", ci.Center, ci.MoE, ci.Confidence*100)
}

// SatisfiesErrorBound implements the Theorem-11 stopping rule: the relative
// error |δ*−δ|/δ is bounded by e with probability 1−α when the MoE satisfies
// ε ≤ δ*·e/(1+e).
func (ci CI) SatisfiesErrorBound(e float64) bool {
	return ci.MoE <= MoETarget(ci.Center, e)
}

// MoETarget returns the Theorem-11 threshold δ*·e/(1+e).
func MoETarget(center, e float64) float64 {
	return center * e / (1 + e)
}
