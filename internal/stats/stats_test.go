package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.025, -1.959964},
		{0.99, 2.326348},
		{0.995, 2.575829},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile boundary values wrong")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.5)
		if p == 0 {
			return true
		}
		a, b := NormalQuantile(0.5+p), NormalQuantile(0.5-p)
		return math.Abs(a+b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZAlphaHalf(t *testing.T) {
	z, err := ZAlphaHalf(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("z(95%%) = %v, want 1.96", z)
	}
	if _, err := ZAlphaHalf(0); err == nil {
		t.Error("accepted confidence 0")
	}
	if _, err := ZAlphaHalf(1); err == nil {
		t.Error("accepted confidence 1")
	}
}

func TestCI(t *testing.T) {
	ci := CI{Center: 0.3, MoE: 0.05, Confidence: 0.95}
	if ci.Lo() != 0.25 || ci.Hi() != 0.35 {
		t.Errorf("bounds = [%v,%v]", ci.Lo(), ci.Hi())
	}
	if !ci.Covers(0.3) || !ci.Covers(0.25) || ci.Covers(0.2) {
		t.Error("Covers wrong")
	}
	if ci.String() == "" {
		t.Error("empty String")
	}
}

func TestTheorem11StoppingRule(t *testing.T) {
	// Example 6 of the paper: δ*=0.3, e=0.01 → threshold 0.3·0.01/1.01.
	target := MoETarget(0.3, 0.01)
	if math.Abs(target-0.3*0.01/1.01) > 1e-12 {
		t.Errorf("MoETarget = %v", target)
	}
	ci := CI{Center: 0.3, MoE: target * 0.99, Confidence: 0.95}
	if !ci.SatisfiesErrorBound(0.01) {
		t.Error("tight CI rejected")
	}
	ci.MoE = target * 1.01
	if ci.SatisfiesErrorBound(0.01) {
		t.Error("loose CI accepted")
	}
}

// TestTheorem11Guarantee verifies the substance of Theorem 11: whenever the
// exact δ lies inside the CI and ε ≤ δ*·e/(1+e), the relative error is ≤ e.
func TestTheorem11Guarantee(t *testing.T) {
	f := func(rawCenter, rawOff, rawE float64) bool {
		center := 0.05 + math.Mod(math.Abs(rawCenter), 1)
		e := 0.005 + math.Mod(math.Abs(rawE), 0.3)
		moe := MoETarget(center, e)
		// δ anywhere inside [δ*−ε, δ*+ε]:
		off := math.Mod(math.Abs(rawOff), 2) - 1 // in [-1,1]
		delta := center + off*moe
		if delta <= 0 {
			return true
		}
		relErr := math.Abs(center-delta) / delta
		return relErr <= e+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinPossibleWorldsPaperExample(t *testing.T) {
	// Example 5: DBLP n=682819, k=30 → m=31, ϵ=0.05, β=0.02 gives ≈ 16624
	// worlds, so Gq needs ≈ 16625 nodes.
	size, err := MinGqSizeCore(0.05, 0.02, 30, 682819)
	if err != nil {
		t.Fatal(err)
	}
	if size < 16000 || size > 17500 {
		t.Errorf("MinGqSizeCore = %d, want ≈16625", size)
	}
}

func TestMinGqSizeMonotonicity(t *testing.T) {
	base, _ := MinGqSizeCore(0.05, 0.05, 8, 100000)
	stricterEps, _ := MinGqSizeCore(0.01, 0.05, 8, 100000)
	stricterBeta, _ := MinGqSizeCore(0.05, 0.01, 8, 100000)
	biggerK, _ := MinGqSizeCore(0.05, 0.05, 16, 100000)
	if stricterEps <= base {
		t.Errorf("smaller ϵ should need more nodes: %d vs %d", stricterEps, base)
	}
	if stricterBeta <= base {
		t.Errorf("smaller β should need more nodes: %d vs %d", stricterBeta, base)
	}
	if biggerK <= base {
		t.Errorf("larger k should need more nodes: %d vs %d", biggerK, base)
	}
}

func TestMinGqSizeClamped(t *testing.T) {
	size, err := MinGqSizeCore(0.05, 0.05, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	if size > 500 {
		t.Errorf("size %d exceeds population", size)
	}
}

func TestMinGqVariants(t *testing.T) {
	core, _ := MinGqSizeCore(0.05, 0.05, 10, 1e6)
	truss, _ := MinGqSizeTruss(0.05, 0.05, 10, 1e6)
	sized, _ := MinGqSizeSizeBounded(0.05, 0.05, 30, 1e6)
	if truss > core {
		t.Errorf("truss bound (m=k) should not exceed core bound (m=k+1): %d vs %d", truss, core)
	}
	if sized <= core {
		t.Errorf("size-bounded with l=30 should exceed core with k=10: %d vs %d", sized, core)
	}
}

func TestMinPossibleWorldsErrors(t *testing.T) {
	if _, err := MinPossibleWorlds(0, 0.05, 5, 100); err == nil {
		t.Error("accepted eps=0")
	}
	if _, err := MinPossibleWorlds(0.05, 1.5, 5, 100); err == nil {
		t.Error("accepted beta>1")
	}
	if _, err := MinPossibleWorlds(0.05, 0.05, 100, 100); err == nil {
		t.Error("accepted m=n")
	}
}

func TestIncrementalSampleSizePaperExample(t *testing.T) {
	// Example 6: δ*=0.3, ε=3.5e-3, |S_blb|=1000, m=0.6, e=0.01. The paper
	// reports ≈253; evaluating Eq. 12 literally gives 218 (the paper's
	// number does not follow from its own formula), so accept the
	// literal-formula value with a tolerance covering both.
	target := MoETarget(0.3, 0.01)
	ds := IncrementalSampleSize(3.5e-3, target, 1000, 0.6)
	if ds < 200 || ds > 260 {
		t.Errorf("ΔS = %d, want ≈218 (Eq. 12)", ds)
	}
	// ε=8e-3: Eq. 12 gives ≈2287 (paper: ≈2284).
	ds = IncrementalSampleSize(8e-3, target, 1000, 0.6)
	if ds < 2200 || ds > 2380 {
		t.Errorf("ΔS = %d, want ≈2287 (Eq. 12)", ds)
	}
}

func TestIncrementalSampleSizeEdgeCases(t *testing.T) {
	if ds := IncrementalSampleSize(0.001, 0.002, 1000, 0.6); ds != 0 {
		t.Errorf("ΔS = %d when ε below target, want 0", ds)
	}
	if ds := IncrementalSampleSize(0.002001, 0.002, 1000, 0.6); ds < 1 {
		t.Errorf("ΔS = %d, want ≥ 1", ds)
	}
}

func TestIncrementalSampleSizeMonotone(t *testing.T) {
	target := MoETarget(0.3, 0.02)
	prev := 0
	for _, moe := range []float64{0.007, 0.01, 0.02, 0.04} {
		ds := IncrementalSampleSize(moe, target, 1000, 0.6)
		if ds <= prev {
			t.Errorf("ΔS not monotone in MoE: %d after %d", ds, prev)
		}
		prev = ds
	}
}

func TestBootstrapRecoversSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 400
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.NormFloat64()*2 + 10
	}
	mean, sigma := Bootstrap(values, 200, rng)
	if math.Abs(mean-10) > 0.5 {
		t.Errorf("bootstrap mean = %v, want ≈10", mean)
	}
	// σ of the mean ≈ 2/√400 = 0.1.
	if sigma < 0.05 || sigma > 0.2 {
		t.Errorf("bootstrap sigma = %v, want ≈0.1", sigma)
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if m, s := Bootstrap(nil, 100, rng); m != 0 || s != 0 {
		t.Errorf("empty input: %v,%v", m, s)
	}
	if _, s := Bootstrap([]float64{5, 5, 5}, 50, rng); s != 0 {
		t.Errorf("constant input: sigma = %v, want 0", s)
	}
}

func TestBLBCoverage(t *testing.T) {
	// The 95% CI should cover the true population mean in most trials.
	trueMean := 0.4
	trials := 60
	covered := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		values := make([]float64, 600)
		for i := range values {
			values[i] = math.Min(1, math.Max(0, trueMean+rng.NormFloat64()*0.15))
		}
		res, err := BLB(values, DefaultBLB(), rng)
		if err != nil {
			t.Fatal(err)
		}
		// The CI centers on the sample mean; widen by the sample-vs-population
		// gap tolerance: just check coverage of the sample mean's neighborhood.
		if res.CI.Covers(Mean(values)) {
			covered++
		}
	}
	if covered < trials*8/10 {
		t.Errorf("sample-mean coverage %d/%d too low", covered, trials)
	}
}

func TestBLBMoEShrinksWithSampleSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := make([]float64, 100)
	large := make([]float64, 5000)
	for i := range small {
		small[i] = rng.Float64()
	}
	for i := range large {
		large[i] = rng.Float64()
	}
	rs, err := BLB(small, DefaultBLB(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := BLB(large, DefaultBLB(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rl.CI.MoE >= rs.CI.MoE {
		t.Errorf("MoE did not shrink: %v (n=5000) vs %v (n=100)", rl.CI.MoE, rs.CI.MoE)
	}
}

func TestBLBValidation(t *testing.T) {
	cfg := DefaultBLB()
	cfg.Scale = 1.2
	if _, err := BLB([]float64{1, 2, 3}, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted scale ≥ 1")
	}
	if _, err := BLB(nil, DefaultBLB(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted empty values")
	}
	bad := DefaultBLB()
	bad.Resamples = 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted 1 resample")
	}
}

func TestMeanStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(vals); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(vals); math.Abs(s-2.13808993) > 1e-6 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("degenerate inputs")
	}
}
