package store

// Fault-injection tests for the storage layer's failure discipline: a
// failed or torn journal append must leave the file exactly as it was, and
// an atomic snapshot write that dies mid-stream must leave no destination
// file at all.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faults"
	"repro/internal/mutate"
)

func testDeltas(tag string) []mutate.Delta {
	return []mutate.Delta{{Op: mutate.OpSetAttr, U: 1, Text: []string{tag}}}
}

// TestJournalAppendFsyncFaultRewinds: an injected fsync error must rewind
// the record so the on-disk journal holds exactly the durable batches —
// and the journal must keep working once the fault clears.
func TestJournalAppendFsyncFaultRewinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, batches, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(batches) != 0 {
		t.Fatalf("fresh journal replayed %d batches", len(batches))
	}
	if _, err := j.Append(testDeltas("one")); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, path)

	faults.Enable(1, faults.Spec{Site: "journal.fsync", Count: 1, Err: "enospc"})
	defer faults.Disable()
	if _, err := j.Append(testDeltas("lost")); err == nil {
		t.Fatal("Append with a failing fsync returned no error")
	} else if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error should surface the injected ENOSPC: %v", err)
	}
	if got := fileSize(t, path); got != sizeBefore {
		t.Fatalf("failed append left %d bytes (was %d); the record must rewind", got, sizeBefore)
	}

	// Fault spent: the journal accepts appends again, and a reopen replays
	// exactly the durable batches in order.
	if _, err := j.Append(testDeltas("two")); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	j.Close()
	j2, batches, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(batches) != 2 {
		t.Fatalf("replayed %d batches, want 2 (the durable ones)", len(batches))
	}
}

// TestJournalAppendPartialWriteRewinds: a torn record write (half the
// bytes land, then the disk dies) must also rewind — a replay must never
// see a half-record.
func TestJournalAppendPartialWriteRewinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Append(testDeltas("keep")); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, path)

	faults.Enable(2, faults.Spec{Site: "journal.append", Count: 1, Partial: true, Err: "eio"})
	defer faults.Disable()
	if _, err := j.Append(testDeltas("torn-record-with-some-length-to-it")); err == nil {
		t.Fatal("Append with a torn write returned no error")
	}
	if got := fileSize(t, path); got != sizeBefore {
		t.Fatalf("torn append left %d bytes (was %d); the half-record must rewind", got, sizeBefore)
	}
	if _, err := TailJournal(path, 0); err != nil {
		t.Fatalf("tail after torn write: %v", err)
	}
}

// TestAtomicWriteFileFault: a snapshot write that fails mid-stream (torn
// or clean) must leave neither the destination nor the temp file behind.
func TestAtomicWriteFileFault(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "g.snap")
	faults.Enable(3, faults.Spec{Site: "snapshot.write", Count: 1, Partial: true, Err: "enospc"})
	defer faults.Disable()
	_, err := AtomicWriteFile(dest, func(w io.Writer) error {
		for i := 0; i < 64; i++ {
			if _, err := fmt.Fprintf(w, "chunk %04d of snapshot payload\n", i); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("AtomicWriteFile with an injected write fault returned no error")
	}
	if _, serr := os.Stat(dest); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("failed atomic write left the destination behind: %v", serr)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("failed atomic write left %d stray files: %v", len(entries), entries)
	}

	// Fault spent: the same write succeeds and the file is whole.
	n, err := AtomicWriteFile(dest, func(w io.Writer) error {
		_, err := io.WriteString(w, "whole snapshot")
		return err
	})
	if err != nil {
		t.Fatalf("write after fault cleared: %v", err)
	}
	if got := fileSize(t, dest); got != n {
		t.Fatalf("size %d, want %d", got, n)
	}
}

// TestOpenFaults: injected open errors surface from both journal open and
// snapshot open without wedging later opens.
func TestOpenFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	faults.Enable(4, faults.Spec{Site: "journal.open", Count: 1, Err: "eio"})
	defer faults.Disable()
	if _, _, err := OpenJournal(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("OpenJournal under fault: %v, want injected error", err)
	}
	j2, _, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal after fault cleared: %v", err)
	}
	j2.Close()
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
