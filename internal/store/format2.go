package store

// Version 2 of the snapshot format: the mmap-ready aligned section-table
// layout, optionally with delta+varint compressed adjacency.
//
// # Format (version 2)
//
// All integers are little-endian. The file is a fixed header, a section
// table, the section payloads, and a trailing CRC:
//
//	magic    [8]byte  "SEASNAP\x00"
//	version  uint32   2
//	flags    uint32   bit 0: index sections present; bit 1: compressed adjacency
//	nsec     uint32   number of section-table entries
//	reserved uint32   0
//	table    nsec × { id uint32, reserved uint32, off uint64, len uint64 }
//	...section payloads, each at an 8-byte-aligned file offset...
//	crc      uint32   CRC-32 (Castagnoli) of every preceding byte
//
// Section offsets are absolute file offsets; the gap between sections is
// zero padding. Every section offset is a multiple of 8, so a mapped
// snapshot's int32/int64/float64 payloads can be reinterpreted in place
// without copying (see OpenMapped). Sections appear in the table in
// ascending file order.
//
// Section IDs and payloads:
//
//	 1 meta       n uint64, edges uint64, textLen uint64, numDim uint32, dictLen uint32
//	 2 offsets    [n+1]int32   CSR element offsets
//	 3 adj        [2·edges]int32  (uncompressed layout only)
//	 4 packoff    [n+1]int64   per-node byte offsets into packblob (compressed only)
//	 5 packblob   varint bytes (compressed only)
//	 6 textoff    [n+1]int32
//	 7 text       [textLen]int32
//	 8 num        [n·numDim]float64
//	 9 dict       dictLen × (uint32 byteLen + bytes)
//	10 coreness   [n]int32     (index only)
//	11 nodetruss  [n]int32     (index only, optional)
//	12 normmin    [numDim]float64 (index only)
//	13 normmax    [numDim]float64 (index only)
//
// The compressed adjacency encodes each node's sorted neighbor list as
// uvarints: the first neighbor as its value, every later neighbor as the
// delta to its predecessor (always ≥ 1 — lists are strictly ascending).
// packoff[v] is the byte offset of v's encoding in packblob; the element
// offsets section is kept as-is so Degree and the positional edge-ID
// contract (graph.CSR) stay O(1).
//
// Open/OpenFile verify the trailing checksum and the structural invariants
// before serving (heap open). OpenMapped validates only the header and
// section table — O(1) in the graph size — and trusts payload bytes that
// were validated when written; that is the zero-copy boot path.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/cserr"
	"repro/internal/graph"
)

// Version2 is the aligned section-table snapshot format version.
const Version2 = 2

const (
	flagCompressed = 1 << 1

	v2HeaderLen   = 24
	v2TableEntry  = 24
	v2MetaLen     = 32
	v2MaxSections = 64
)

// Section IDs of the v2 layout.
const (
	secMeta uint32 = iota + 1
	secOffsets
	secAdj
	secPackOff
	secPackBlob
	secTextOff
	secText
	secNum
	secDict
	secCoreness
	secNodeTruss
	secNormMin
	secNormMax
)

var sectionNames = map[uint32]string{
	secMeta:      "meta",
	secOffsets:   "offsets",
	secAdj:       "adj",
	secPackOff:   "packoff",
	secPackBlob:  "packblob",
	secTextOff:   "textoff",
	secText:      "text",
	secNum:       "num",
	secDict:      "dict",
	secCoreness:  "coreness",
	secNodeTruss: "nodetruss",
	secNormMin:   "normmin",
	secNormMax:   "normmax",
}

func sectionName(id uint32) string {
	if n, ok := sectionNames[id]; ok {
		return n
	}
	return fmt.Sprintf("section#%d", id)
}

// PackOptions selects the on-disk snapshot layout.
type PackOptions struct {
	// Align writes the version-2 aligned section-table layout, which
	// OpenMapped can serve zero-copy straight from the page cache. False
	// (and Compress false) keeps the legacy version-1 stream.
	Align bool
	// Compress stores the adjacency delta+varint encoded (implies Align).
	// Neighbor lists are decoded per node into caller scratch at query
	// time; the rest of the snapshot stays flat and mappable.
	Compress bool
}

// WriteSnapshot serializes g and idx (nil for graph-only) to w in the layout
// opt selects: the zero PackOptions writes the legacy v1 stream (identical
// to Write), Align the v2 aligned layout, Compress the v2 layout with
// delta+varint adjacency.
func WriteSnapshot(w io.Writer, g *graph.Graph, idx *Index, opt PackOptions) error {
	if !opt.Align && !opt.Compress {
		return Write(w, g, idx)
	}
	if g == nil {
		return fmt.Errorf("store: nil graph")
	}
	raw := g.Export()
	n := g.NumNodes()
	if idx != nil {
		if len(idx.Coreness) != n {
			return fmt.Errorf("store: index coreness length %d, graph has %d nodes", len(idx.Coreness), n)
		}
		if idx.NodeTruss != nil && len(idx.NodeTruss) != n {
			return fmt.Errorf("store: index truss length %d, graph has %d nodes", len(idx.NodeTruss), n)
		}
		if len(idx.NormMin) != raw.NumDim || len(idx.NormMax) != raw.NumDim {
			return fmt.Errorf("store: index bounds width %d/%d, graph NumDim %d",
				len(idx.NormMin), len(idx.NormMax), raw.NumDim)
		}
	}

	// Meta payload.
	meta := make([]byte, v2MetaLen)
	binary.LittleEndian.PutUint64(meta[0:], uint64(n))
	binary.LittleEndian.PutUint64(meta[8:], uint64(g.NumEdges()))
	binary.LittleEndian.PutUint64(meta[16:], uint64(len(raw.Text)))
	binary.LittleEndian.PutUint32(meta[24:], uint32(raw.NumDim))
	binary.LittleEndian.PutUint32(meta[28:], uint32(len(raw.DictNames)))

	// Dict payload (length-prefixed names, materialized to know its size).
	var dictLen int
	for _, name := range raw.DictNames {
		dictLen += 4 + len(name)
	}
	dict := make([]byte, 0, dictLen)
	var b4 [4]byte
	for _, name := range raw.DictNames {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(name)))
		dict = append(dict, b4[:]...)
		dict = append(dict, name...)
	}

	type sec struct {
		id    uint32
		size  int64
		write func(e *encoder)
	}
	secs := []sec{
		{secMeta, v2MetaLen, func(e *encoder) { e.bytes(meta) }},
		{secOffsets, 4 * int64(len(raw.Offsets)), func(e *encoder) { e.i32s(raw.Offsets) }},
	}
	if opt.Compress {
		packOff, blob := packAdjacency(raw.Offsets, raw.Adj)
		secs = append(secs,
			sec{secPackOff, 8 * int64(len(packOff)), func(e *encoder) { e.i64s(packOff) }},
			sec{secPackBlob, int64(len(blob)), func(e *encoder) { e.bytes(blob) }},
		)
	} else {
		secs = append(secs, sec{secAdj, 4 * int64(len(raw.Adj)), func(e *encoder) { e.i32s(raw.Adj) }})
	}
	secs = append(secs,
		sec{secTextOff, 4 * int64(len(raw.TextOff)), func(e *encoder) { e.i32s(raw.TextOff) }},
		sec{secText, 4 * int64(len(raw.Text)), func(e *encoder) { e.i32s(raw.Text) }},
		sec{secNum, 8 * int64(len(raw.Num)), func(e *encoder) { e.f64s(raw.Num) }},
		sec{secDict, int64(len(dict)), func(e *encoder) { e.bytes(dict) }},
	)
	if idx != nil {
		secs = append(secs, sec{secCoreness, 4 * int64(len(idx.Coreness)), func(e *encoder) { e.i32s(idx.Coreness) }})
		if idx.NodeTruss != nil {
			secs = append(secs, sec{secNodeTruss, 4 * int64(len(idx.NodeTruss)), func(e *encoder) { e.i32s(idx.NodeTruss) }})
		}
		secs = append(secs,
			sec{secNormMin, 8 * int64(len(idx.NormMin)), func(e *encoder) { e.f64s(idx.NormMin) }},
			sec{secNormMax, 8 * int64(len(idx.NormMax)), func(e *encoder) { e.f64s(idx.NormMax) }},
		)
	}

	// Lay out: header, table, then 8-byte-aligned payloads.
	offs := make([]int64, len(secs))
	pos := int64(v2HeaderLen + v2TableEntry*len(secs))
	for i, s := range secs {
		pos = align8(pos)
		offs[i] = pos
		pos += s.size
	}

	crc := crc32.New(castagnoli)
	ew := &encoder{w: io.MultiWriter(w, crc)}
	ew.bytes(magic[:])
	ew.u32(Version2)
	var flags uint32
	if idx != nil {
		flags |= flagIndex
	}
	if opt.Compress {
		flags |= flagCompressed
	}
	ew.u32(flags)
	ew.u32(uint32(len(secs)))
	ew.u32(0)
	for i, s := range secs {
		ew.u32(s.id)
		ew.u32(0)
		ew.u64(uint64(offs[i]))
		ew.u64(uint64(s.size))
	}
	var pad [8]byte
	written := int64(v2HeaderLen + v2TableEntry*len(secs))
	for i, s := range secs {
		if gap := offs[i] - written; gap > 0 {
			ew.bytes(pad[:gap])
		}
		s.write(ew)
		written = offs[i] + s.size
	}
	if ew.err != nil {
		return ew.err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

func align8(x int64) int64 { return (x + 7) &^ 7 }

// packAdjacency delta+uvarint encodes the CSR neighbor lists: per node, the
// first neighbor as its value, every later one as the (≥1) delta to its
// predecessor. Returns per-node byte offsets into the blob (len n+1).
func packAdjacency(offsets []int32, adj []graph.NodeID) ([]int64, []byte) {
	n := len(offsets) - 1
	packOff := make([]int64, n+1)
	blob := make([]byte, 0, len(adj)) // deltas are usually 1–2 bytes
	var tmp [binary.MaxVarintLen64]byte
	for v := 0; v < n; v++ {
		prev := int64(-1)
		for _, u := range adj[offsets[v]:offsets[v+1]] {
			var d uint64
			if prev < 0 {
				d = uint64(u)
			} else {
				d = uint64(int64(u) - prev)
			}
			blob = append(blob, tmp[:binary.PutUvarint(tmp[:], d)]...)
			prev = int64(u)
		}
		packOff[v+1] = int64(len(blob))
	}
	return packOff, blob
}

// v2section is one parsed section-table entry.
type v2section struct {
	id   uint32
	off  int64
	size int64
}

// parseV2Table parses and validates the v2 header and section table from the
// file's leading bytes. fileSize is the total file size (trailer included);
// head must hold at least the header and table. The validation is O(table),
// not O(file) — it is the entirety of what a mapped open checks.
func parseV2Table(head []byte, fileSize int64) (flags uint32, secs []v2section, err error) {
	if len(head) < v2HeaderLen {
		return 0, nil, fmt.Errorf("%w: section %q truncated: %d bytes is shorter than a v2 header",
			cserr.ErrSnapshotCorrupt, "header", len(head))
	}
	flags = binary.LittleEndian.Uint32(head[12:])
	if flags&^uint32(flagIndex|flagCompressed) != 0 {
		return 0, nil, fmt.Errorf("%w: unknown flags %#x", cserr.ErrSnapshotVersion, flags)
	}
	nsec := int(binary.LittleEndian.Uint32(head[16:]))
	if nsec <= 0 || nsec > v2MaxSections {
		return 0, nil, fmt.Errorf("%w: section count %d outside [1,%d]", cserr.ErrSnapshotCorrupt, nsec, v2MaxSections)
	}
	tableEnd := v2HeaderLen + v2TableEntry*nsec
	if len(head) < tableEnd {
		return 0, nil, fmt.Errorf("%w: section %q truncated at %d bytes (table needs %d)",
			cserr.ErrSnapshotCorrupt, "table", len(head), tableEnd)
	}
	secs = make([]v2section, nsec)
	prevEnd := int64(tableEnd)
	for i := range secs {
		e := head[v2HeaderLen+v2TableEntry*i:]
		s := v2section{
			id:   binary.LittleEndian.Uint32(e),
			off:  int64(binary.LittleEndian.Uint64(e[8:])),
			size: int64(binary.LittleEndian.Uint64(e[16:])),
		}
		name := sectionName(s.id)
		if s.off%8 != 0 {
			return 0, nil, fmt.Errorf("%w: section %q at unaligned offset %d", cserr.ErrSnapshotCorrupt, name, s.off)
		}
		if s.off < prevEnd || s.size < 0 || s.off > fileSize || s.size > fileSize-s.off {
			return 0, nil, fmt.Errorf("%w: section %q truncated: spans [%d,%d) of a %d-byte snapshot",
				cserr.ErrSnapshotCorrupt, name, s.off, s.off+s.size, fileSize)
		}
		if s.off+s.size > fileSize-4 {
			return 0, nil, fmt.Errorf("%w: section %q truncated: overlaps the checksum trailer",
				cserr.ErrSnapshotCorrupt, name)
		}
		prevEnd = s.off + s.size
		secs[i] = s
	}
	return flags, secs, nil
}

func findSection(secs []v2section, id uint32) (v2section, bool) {
	for _, s := range secs {
		if s.id == id {
			return s, true
		}
	}
	return v2section{}, false
}

// v2Meta is the decoded meta section.
type v2Meta struct {
	n       int
	edges   int
	textLen int
	numDim  int
	dictLen int
}

func parseV2Meta(data []byte, secs []v2section) (v2Meta, error) {
	s, ok := findSection(secs, secMeta)
	if !ok || s.size < v2MetaLen {
		return v2Meta{}, fmt.Errorf("%w: section %q missing or short", cserr.ErrSnapshotCorrupt, "meta")
	}
	b := data[s.off : s.off+v2MetaLen]
	m := v2Meta{
		n:       int(binary.LittleEndian.Uint64(b[0:])),
		edges:   int(binary.LittleEndian.Uint64(b[8:])),
		textLen: int(binary.LittleEndian.Uint64(b[16:])),
		numDim:  int(binary.LittleEndian.Uint32(b[24:])),
		dictLen: int(binary.LittleEndian.Uint32(b[28:])),
	}
	if m.n < 0 || m.edges < 0 || m.textLen < 0 || m.numDim < 0 || m.dictLen < 0 {
		return v2Meta{}, fmt.Errorf("%w: section %q holds negative counts", cserr.ErrSnapshotCorrupt, "meta")
	}
	if m.numDim > 0 && m.n > math.MaxInt/m.numDim {
		return v2Meta{}, fmt.Errorf("%w: section %q: numDim %d overflows", cserr.ErrSnapshotCorrupt, "meta", m.numDim)
	}
	return m, nil
}

// sectionBytes returns the payload of section id, checking its exact size.
func sectionBytes(data []byte, secs []v2section, id uint32, want int64) ([]byte, error) {
	s, ok := findSection(secs, id)
	if !ok {
		return nil, fmt.Errorf("%w: section %q missing", cserr.ErrSnapshotCorrupt, sectionName(id))
	}
	if s.size != want {
		return nil, fmt.Errorf("%w: section %q is %d bytes, want %d",
			cserr.ErrSnapshotCorrupt, sectionName(id), s.size, want)
	}
	return data[s.off : s.off+s.size], nil
}

// decodeV2 is the heap open of a v2 snapshot: full checksum verification,
// every section decoded into fresh heap slices, structural validation.
func decodeV2(data []byte) (*Snapshot, error) {
	flags, secs, err := parseV2Table(data, int64(len(data)))
	if err != nil {
		return nil, err
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x, stored %08x)", cserr.ErrSnapshotCorrupt, got, want)
	}
	meta, err := parseV2Meta(data, secs)
	if err != nil {
		return nil, err
	}
	compressed := flags&flagCompressed != 0

	i32sec := func(id uint32, n int) ([]int32, error) {
		b, err := sectionBytes(data, secs, id, 4*int64(n))
		if err != nil {
			return nil, err
		}
		return decodeI32s(b), nil
	}
	f64sec := func(id uint32, n int) ([]float64, error) {
		b, err := sectionBytes(data, secs, id, 8*int64(n))
		if err != nil {
			return nil, err
		}
		return decodeF64s(b), nil
	}

	offsets, err := i32sec(secOffsets, meta.n+1)
	if err != nil {
		return nil, err
	}
	textOff, err := i32sec(secTextOff, meta.n+1)
	if err != nil {
		return nil, err
	}
	text, err := i32sec(secText, meta.textLen)
	if err != nil {
		return nil, err
	}
	num, err := f64sec(secNum, meta.n*meta.numDim)
	if err != nil {
		return nil, err
	}
	dsec, ok := findSection(secs, secDict)
	if !ok {
		return nil, fmt.Errorf("%w: section %q missing", cserr.ErrSnapshotCorrupt, "dict")
	}
	names, err := decodeDict(data[dsec.off:dsec.off+dsec.size], meta.dictLen)
	if err != nil {
		return nil, err
	}

	var idx *Index
	if flags&flagIndex != 0 {
		idx = &Index{}
		if idx.Coreness, err = i32sec(secCoreness, meta.n); err != nil {
			return nil, err
		}
		if _, ok := findSection(secs, secNodeTruss); ok {
			if idx.NodeTruss, err = i32sec(secNodeTruss, meta.n); err != nil {
				return nil, err
			}
		}
		if idx.NormMin, err = f64sec(secNormMin, meta.numDim); err != nil {
			return nil, err
		}
		if idx.NormMax, err = f64sec(secNormMax, meta.numDim); err != nil {
			return nil, err
		}
	}

	info := SnapshotInfo{
		Version:    Version2,
		Sections:   sectionList(secs),
		Aligned:    true,
		Compressed: compressed,
		Index:      idx != nil,
		Bytes:      int64(len(data)),
	}

	if compressed {
		packOff, err := func() ([]int64, error) {
			b, err := sectionBytes(data, secs, secPackOff, 8*int64(meta.n+1))
			if err != nil {
				return nil, err
			}
			return decodeI64s(b), nil
		}()
		if err != nil {
			return nil, err
		}
		bsec, ok := findSection(secs, secPackBlob)
		if !ok {
			return nil, fmt.Errorf("%w: section %q missing", cserr.ErrSnapshotCorrupt, "packblob")
		}
		blob := append([]byte(nil), data[bsec.off:bsec.off+bsec.size]...)
		pg, err := newPackedGraph(meta, offsets, packOff, blob, textOff, text, num, names)
		if err != nil {
			return nil, err
		}
		if err := pg.validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", cserr.ErrSnapshotCorrupt, err)
		}
		return &Snapshot{Store: pg, Index: idx, Info: info}, nil
	}

	adj, err := i32sec(secAdj, 2*meta.edges)
	if err != nil {
		return nil, err
	}
	g, err := graph.FromRaw(graph.Raw{
		Offsets: offsets, Adj: adj,
		TextOff: textOff, Text: text,
		NumDim: meta.numDim, Num: num,
		DictNames: names,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", cserr.ErrSnapshotCorrupt, err)
	}
	return &Snapshot{Graph: g, Store: g, Index: idx, Info: info}, nil
}

func sectionList(secs []v2section) []string {
	out := make([]string, len(secs))
	for i, s := range secs {
		out[i] = sectionName(s.id)
	}
	return out
}

func decodeI32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeI64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func decodeF64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func decodeDict(b []byte, count int) ([]string, error) {
	names := make([]string, 0, min(count, 1<<20))
	off := 0
	for i := 0; i < count; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("%w: section %q truncated at name %d", cserr.ErrSnapshotCorrupt, "dict", i)
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if l < 0 || off+l > len(b) {
			return nil, fmt.Errorf("%w: section %q truncated at name %d", cserr.ErrSnapshotCorrupt, "dict", i)
		}
		names = append(names, string(b[off:off+l]))
		off += l
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: section %q has %d trailing bytes", cserr.ErrSnapshotCorrupt, "dict", len(b)-off)
	}
	return names, nil
}
