package store_test

// Tests for the version-2 aligned snapshot layout: heap/mapped/compressed
// backings answering byte-identically, truncation detection at every section
// boundary with the failing section named, DetectFile descriptions, and the
// packed-adjacency accessors against their heap CSR equivalents.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cserr"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/store"
)

// v2Bytes serializes the engine state in the layout opt selects.
func v2Bytes(t testing.TB, eng *engine.Engine, opt store.PackOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.WriteSnapshotOpts(&buf, opt); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeTemp drops data into a fresh temp file and returns its path.
func writeTemp(t testing.TB, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mmapExpected reports whether OpenMapped must actually map on this platform
// (the unix build tag); elsewhere the heap fallback is the correct outcome.
func mmapExpected() bool {
	switch runtime.GOOS {
	case "windows", "plan9", "js", "wasip1":
		return false
	}
	return true
}

// outcomes runs a fixed request battery and returns the marshalled results,
// the byte-identity currency of the round-trip property tests.
func outcomes(t testing.TB, eng *engine.Engine, q graph.NodeID) [][]byte {
	t.Helper()
	reqs := []query.Request{
		{Query: q, Method: query.MethodSEA, K: 4, Seed: 1},
		{Query: q, Method: query.MethodExact, K: 4, MaxStates: 20000},
		{Query: q, Method: query.MethodStructural, K: 4},
		{Query: q, Method: query.MethodACQ, K: 4},
	}
	out := make([][]byte, len(reqs))
	for i, req := range reqs {
		res, err := eng.Query(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", req.Method, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// TestV2RoundTripOutcomes is the tentpole property test: the same request
// battery answers byte-identically across every snapshot backing — legacy v1
// heap, v2 aligned heap, v2 compressed heap, and the mapped zero-copy opens
// of both v2 layouts.
func TestV2RoundTripOutcomes(t *testing.T) {
	d, eng := buildEngine(t, "facebook", 0.3)
	q := d.QueryNodes(1, 4, 7)[0]
	want := outcomes(t, eng, q)

	aligned := v2Bytes(t, eng, store.PackOptions{Align: true})
	compressed := v2Bytes(t, eng, store.PackOptions{Compress: true})
	if bytes.Equal(aligned, compressed) {
		t.Fatal("compressed layout identical to aligned")
	}

	check := func(t *testing.T, snap *store.Snapshot) {
		t.Helper()
		if snap.Index == nil {
			t.Fatal("snapshot lost its index section")
		}
		reopened, err := engine.NewFromSnapshot(snap, engine.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := outcomes(t, reopened, q)
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Errorf("request %d outcome differs:\nfresh:    %s\nreopened: %s", i, want[i], got[i])
			}
		}
	}

	heapVariants := map[string][]byte{
		"v1-heap":            snapshotBytes(t, eng),
		"v2-aligned-heap":    aligned,
		"v2-compressed-heap": compressed,
	}
	for name, data := range heapVariants {
		t.Run(name, func(t *testing.T) {
			snap, err := store.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			check(t, snap)
		})
	}
	mappedVariants := map[string][]byte{
		"v2-aligned-mapped":    aligned,
		"v2-compressed-mapped": compressed,
	}
	for name, data := range mappedVariants {
		t.Run(name, func(t *testing.T) {
			m, err := store.OpenMapped(writeTemp(t, "g.snap", data))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if mmapExpected() != m.Mapped() {
				t.Fatalf("Mapped() = %v, platform expects %v", m.Mapped(), mmapExpected())
			}
			check(t, m.Snapshot())
		})
	}
}

// TestPackedGraphEquivalence pins every graph.Store accessor of the
// compressed backing to the heap CSR it was packed from, including the
// positional ListOffset contract the truss edge index depends on.
func TestPackedGraphEquivalence(t *testing.T) {
	d, eng := buildEngine(t, "facebook", 0.25)
	snap, err := store.Decode(v2Bytes(t, eng, store.PackOptions{Compress: true}))
	if err != nil {
		t.Fatal(err)
	}
	pg, ok := snap.Store.(*store.PackedGraph)
	if !ok {
		t.Fatalf("compressed snapshot opened as %T, want *store.PackedGraph", snap.Store)
	}
	if snap.Graph != nil {
		t.Fatal("compressed snapshot claims a heap *graph.Graph")
	}
	g := d.Graph
	if pg.NumNodes() != g.NumNodes() || pg.NumEdges() != g.NumEdges() || pg.NumDim() != g.NumDim() {
		t.Fatalf("shape: packed %d/%d/%d, heap %d/%d/%d",
			pg.NumNodes(), pg.NumEdges(), pg.NumDim(), g.NumNodes(), g.NumEdges(), g.NumDim())
	}
	if pg.PackedBytes() >= 4*2*int64(g.NumEdges()) {
		t.Fatalf("packed adjacency %d bytes, not smaller than flat %d", pg.PackedBytes(), 8*g.NumEdges())
	}
	var buf []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if pg.Degree(id) != g.Degree(id) {
			t.Fatalf("degree(%d): packed %d, heap %d", v, pg.Degree(id), g.Degree(id))
		}
		if pg.ListOffset(id) != g.ListOffset(id) {
			t.Fatalf("listoffset(%d): packed %d, heap %d", v, pg.ListOffset(id), g.ListOffset(id))
		}
		want := g.Neighbors(id)
		got := pg.NeighborsInto(&buf, id)
		if len(got) != len(want) {
			t.Fatalf("neighbors(%d): packed %v, heap %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("neighbors(%d)[%d]: packed %d, heap %d", v, i, got[i], want[i])
			}
			if !pg.HasEdge(id, want[i]) || !pg.HasEdge(want[i], id) {
				t.Fatalf("HasEdge(%d,%d) lost an edge", v, want[i])
			}
		}
		// A non-neighbor probe per node (the next ID after the last neighbor,
		// when it is not itself a neighbor).
		probe := id + 1
		if int(probe) < g.NumNodes() && pg.HasEdge(id, probe) != g.HasEdge(id, probe) {
			t.Fatalf("HasEdge(%d,%d): packed %v, heap %v", id, probe, pg.HasEdge(id, probe), g.HasEdge(id, probe))
		}
		if !equalI32(pg.TextAttrs(id), g.TextAttrs(id)) {
			t.Fatalf("textattrs(%d) differ", v)
		}
		if !equalF64(pg.NumAttrs(id), g.NumAttrs(id)) {
			t.Fatalf("numattrs(%d) differ", v)
		}
	}
	if pg.Dict().Len() != g.Dict().Len() {
		t.Fatalf("dict: packed %d names, heap %d", pg.Dict().Len(), g.Dict().Len())
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// v2Section is a section-table entry re-parsed by the test straight from the
// documented layout, pinning the on-disk format independent of the decoder.
type v2Section struct {
	name string
	off  int64
	size int64
}

var v2SectionNames = map[uint32]string{
	1: "meta", 2: "offsets", 3: "adj", 4: "packoff", 5: "packblob",
	6: "textoff", 7: "text", 8: "num", 9: "dict",
	10: "coreness", 11: "nodetruss", 12: "normmin", 13: "normmax",
}

func parseV2SectionTable(t *testing.T, data []byte) []v2Section {
	t.Helper()
	if string(data[:8]) != "SEASNAP\x00" || binary.LittleEndian.Uint32(data[8:]) != store.Version2 {
		t.Fatal("not a v2 snapshot")
	}
	nsec := int(binary.LittleEndian.Uint32(data[16:]))
	secs := make([]v2Section, nsec)
	for i := range secs {
		e := data[24+24*i:]
		name, ok := v2SectionNames[binary.LittleEndian.Uint32(e)]
		if !ok {
			t.Fatalf("unknown section id %d", binary.LittleEndian.Uint32(e))
		}
		secs[i] = v2Section{
			name: name,
			off:  int64(binary.LittleEndian.Uint64(e[8:])),
			size: int64(binary.LittleEndian.Uint64(e[16:])),
		}
		if secs[i].off%8 != 0 {
			t.Fatalf("section %q at unaligned offset %d", name, secs[i].off)
		}
	}
	return secs
}

// TestV2TruncationNamesSection truncates an aligned and a compressed
// snapshot inside every section (plus mid-header and mid-table) and asserts
// each failure is ErrSnapshotCorrupt naming the failing section.
func TestV2TruncationNamesSection(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.2)
	for _, layout := range []struct {
		name string
		opt  store.PackOptions
	}{
		{"aligned", store.PackOptions{Align: true}},
		{"compressed", store.PackOptions{Compress: true}},
	} {
		t.Run(layout.name, func(t *testing.T) {
			data := v2Bytes(t, eng, layout.opt)
			secs := parseV2SectionTable(t, data)

			cases := []struct {
				wantSection string
				cut         int64 // truncate the file to this many bytes
			}{
				{"header", 20},     // past Decode's generic minimum, short of the v2 header
				{"table", 24 + 12}, // mid first table entry
			}
			for _, s := range secs {
				// Cut mid-payload; zero-size sections cut right at their
				// start, which still leaves the table's span dangling.
				cases = append(cases, struct {
					wantSection string
					cut         int64
				}{s.name, s.off + s.size/2})
			}
			for _, c := range cases {
				_, err := store.Decode(data[:c.cut])
				if !errors.Is(err, cserr.ErrSnapshotCorrupt) {
					t.Errorf("cut at %d: got %v, want ErrSnapshotCorrupt", c.cut, err)
					continue
				}
				if !strings.Contains(err.Error(), fmt.Sprintf("%q", c.wantSection)) {
					t.Errorf("cut at %d: error %q does not name section %q", c.cut, err, c.wantSection)
				}
				// The mapped open must reject the same truncation with its
				// O(1) table validation alone.
				if _, err := store.OpenMapped(writeTemp(t, "trunc.snap", data[:c.cut])); err == nil {
					t.Errorf("cut at %d: OpenMapped accepted a truncated snapshot", c.cut)
				}
			}
		})
	}
}

// TestV2CorruptionDetection covers the non-truncation corruption classes of
// the v2 heap open: payload bit flips (checksum), trailing garbage, and
// unknown header flags.
func TestV2CorruptionDetection(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.2)
	good := v2Bytes(t, eng, store.PackOptions{Compress: true})

	t.Run("bit flip", func(t *testing.T) {
		for _, at := range []int{30, len(good) / 4, len(good) / 2, len(good) - 5} {
			bad := append([]byte(nil), good...)
			bad[at] ^= 0x40
			if _, err := store.Decode(bad); !errors.Is(err, cserr.ErrSnapshotCorrupt) {
				t.Errorf("flip at %d: got %v, want ErrSnapshotCorrupt", at, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0, 0, 0, 0, 0, 0, 0, 0)
		if _, err := store.Decode(bad); !errors.Is(err, cserr.ErrSnapshotCorrupt) {
			t.Errorf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("unknown flags", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[12] |= 1 << 4
		if _, err := store.Decode(bad); !errors.Is(err, cserr.ErrSnapshotVersion) {
			t.Errorf("got %v, want ErrSnapshotVersion", err)
		}
	})
}

func TestDetectFileV2(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.2)
	aligned := writeTemp(t, "aligned.snap", v2Bytes(t, eng, store.PackOptions{Align: true}))
	compressed := writeTemp(t, "compressed.snap", v2Bytes(t, eng, store.PackOptions{Compress: true}))

	info, err := store.DetectFile(aligned)
	if err != nil || !info.IsSnapshot() {
		t.Fatalf("aligned not detected: %+v %v", info, err)
	}
	if info.Version != store.Version2 || !info.Aligned || info.Compressed || !info.Index {
		t.Fatalf("aligned misdescribed: %+v", info)
	}
	if !hasSection(info.Sections, "adj") || hasSection(info.Sections, "packblob") {
		t.Fatalf("aligned sections wrong: %v", info.Sections)
	}
	if s := info.String(); !strings.Contains(s, "v2") || !strings.Contains(s, "aligned") {
		t.Fatalf("aligned description %q", s)
	}

	info, err = store.DetectFile(compressed)
	if err != nil || !info.Compressed || !info.Aligned {
		t.Fatalf("compressed misdescribed: %+v %v", info, err)
	}
	if hasSection(info.Sections, "adj") || !hasSection(info.Sections, "packoff") || !hasSection(info.Sections, "packblob") {
		t.Fatalf("compressed sections wrong: %v", info.Sections)
	}
	if s := info.String(); !strings.Contains(s, "compressed") {
		t.Fatalf("compressed description %q", s)
	}
}

func hasSection(secs []string, name string) bool {
	for _, s := range secs {
		if s == name {
			return true
		}
	}
	return false
}

// TestOpenMappedIndexAndLifecycle: the mapped open serves the identical
// index arrays, reports its mapping size, and Close invalidates the handle
// idempotently (nil handles included).
func TestOpenMappedIndexAndLifecycle(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.2)
	data := v2Bytes(t, eng, store.PackOptions{Align: true})
	path := writeTemp(t, "g.snap", data)

	snap, err := store.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mapped() && m.MappedBytes() != int64(len(data)) {
		t.Fatalf("MappedBytes = %d, file is %d", m.MappedBytes(), len(data))
	}
	if m.Index == nil || snap.Index == nil {
		t.Fatal("index section lost")
	}
	if !equalI32(m.Index.Coreness, snap.Index.Coreness) ||
		!equalI32(m.Index.NodeTruss, snap.Index.NodeTruss) ||
		!equalF64(m.Index.NormMin, snap.Index.NormMin) ||
		!equalF64(m.Index.NormMax, snap.Index.NormMax) {
		t.Fatal("mapped index differs from heap open")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Mapped() || m.MappedBytes() != 0 {
		t.Fatal("closed handle still claims a mapping")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var nilM *store.Mounted
	if nilM.Mapped() || nilM.Close() != nil {
		t.Fatal("nil Mounted misbehaves")
	}
}

// TestOpenMappedFallbacks: v1 snapshots and text files serve heap-resident
// through the same mount entry points, Mapped() == false.
func TestOpenMappedFallbacks(t *testing.T) {
	d, eng := buildEngine(t, "facebook", 0.2)
	v1 := writeTemp(t, "v1.snap", snapshotBytes(t, eng))

	m, err := store.OpenMapped(v1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mapped() {
		t.Fatal("v1 snapshot claims to be mapped")
	}
	if m.Store == nil || m.Store.NumNodes() != d.Graph.NumNodes() {
		t.Fatal("v1 fallback store wrong")
	}
	if m.Info.Version != store.Version {
		t.Fatalf("v1 fallback info %+v", m.Info)
	}

	var text bytes.Buffer
	if err := dataset.WriteGraph(&text, d.Graph); err != nil {
		t.Fatal(err)
	}
	tm, err := store.MountGraphFile(writeTemp(t, "g.txt", text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tm.Mapped() || tm.Info.IsSnapshot() {
		t.Fatalf("text mount misdescribed: %+v", tm.Info)
	}
	if tm.Store.NumEdges() != d.Graph.NumEdges() {
		t.Fatal("text mount lost edges")
	}
}

// FuzzDecode feeds the snapshot decoder arbitrary bytes seeded with every
// on-disk layout and their truncations; the decoder must never panic, and
// anything it accepts must carry a usable backing.
func FuzzDecode(f *testing.F) {
	_, eng := buildEngine(f, "facebook", 0.1)
	v1 := snapshotBytes(f, eng)
	aligned := v2Bytes(f, eng, store.PackOptions{Align: true})
	compressed := v2Bytes(f, eng, store.PackOptions{Compress: true})
	for _, seed := range [][]byte{v1, aligned, compressed} {
		f.Add(seed)
		for _, cut := range []int{0, 8, 16, 23, 24, len(seed) / 2, len(seed) - 1} {
			f.Add(append([]byte(nil), seed[:cut]...))
		}
	}
	// Misaligned/hostile table entries: flip bytes inside the header and the
	// first table entry of the aligned seed.
	for _, at := range []int{12, 16, 25, 32, 40} {
		bad := append([]byte(nil), aligned...)
		bad[at] ^= 0xff
		f.Add(bad)
	}
	f.Add([]byte("SEASNAP\x00"))
	f.Add([]byte("n 10 2\nv 0 a,b 0.5,0.5\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := store.Decode(data)
		if err != nil {
			if !errors.Is(err, cserr.ErrSnapshotCorrupt) && !errors.Is(err, cserr.ErrSnapshotVersion) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		g := snap.Backing()
		if g == nil {
			t.Fatal("accepted snapshot has no backing")
		}
		if g.NumNodes() < 0 || g.NumEdges() < 0 {
			t.Fatalf("negative shape: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		}
		var buf []graph.NodeID
		for v := 0; v < g.NumNodes(); v++ {
			g.NeighborsInto(&buf, graph.NodeID(v))
		}
	})
}
