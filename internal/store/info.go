package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// SnapshotInfo describes an on-disk snapshot without opening it: format
// version, section layout, and the properties that decide how it can serve.
// The zero value (Version 0) means "not a snapshot file".
type SnapshotInfo struct {
	// Version is the snapshot format version (1 legacy stream, 2 aligned
	// section table), or 0 when the file is not a snapshot.
	Version int `json:"version"`
	// Sections lists the v2 section names in file order (nil for v1).
	Sections []string `json:"sections,omitempty"`
	// Aligned reports the 8-byte-aligned v2 layout OpenMapped serves
	// zero-copy.
	Aligned bool `json:"aligned"`
	// Compressed reports delta+varint compressed adjacency.
	Compressed bool `json:"compressed"`
	// Index reports a precomputed admission-index section.
	Index bool `json:"index"`
	// Bytes is the file size.
	Bytes int64 `json:"bytes"`
}

// IsSnapshot reports whether the file was a snapshot at all.
func (i SnapshotInfo) IsSnapshot() bool { return i.Version != 0 }

// String renders the info for CLI output.
func (i SnapshotInfo) String() string {
	if !i.IsSnapshot() {
		return "not a snapshot"
	}
	props := make([]string, 0, 4)
	if i.Aligned {
		props = append(props, "aligned")
	}
	if i.Compressed {
		props = append(props, "compressed")
	}
	if i.Index {
		props = append(props, "index")
	}
	desc := ""
	if len(props) > 0 {
		desc = " " + strings.Join(props, ",")
	}
	if len(i.Sections) > 0 {
		return fmt.Sprintf("snapshot v%d%s (%d sections, %d bytes)", i.Version, desc, len(i.Sections), i.Bytes)
	}
	return fmt.Sprintf("snapshot v%d%s (%d bytes)", i.Version, desc, i.Bytes)
}

// DetectFile inspects the file at path and describes what kind of snapshot
// it is, reading only the header and (for v2) the section table — never the
// payload. A file that is not a snapshot (e.g. the text exchange format)
// returns the zero SnapshotInfo with a nil error; only I/O failures and
// structurally broken snapshot headers error.
func DetectFile(path string) (SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return SnapshotInfo{}, err
	}
	size := st.Size()
	head := make([]byte, min(size, int64(v2HeaderLen+v2MaxSections*v2TableEntry)))
	if _, err := io.ReadFull(f, head); err != nil {
		return SnapshotInfo{}, nil // shorter than its own header: not a snapshot
	}
	if len(head) < 12 || *(*[8]byte)(head[:8]) != magic {
		return SnapshotInfo{}, nil
	}
	switch v := binary.LittleEndian.Uint32(head[8:]); v {
	case Version:
		var flags uint32
		if len(head) >= 16 {
			flags = binary.LittleEndian.Uint32(head[12:])
		}
		return SnapshotInfo{
			Version: Version,
			Index:   flags&flagIndex != 0,
			Bytes:   size,
		}, nil
	case Version2:
		flags, secs, err := parseV2Table(head, size)
		if err != nil {
			return SnapshotInfo{Version: Version2, Bytes: size}, err
		}
		return SnapshotInfo{
			Version:    Version2,
			Sections:   sectionList(secs),
			Aligned:    true,
			Compressed: flags&flagCompressed != 0,
			Index:      flags&flagIndex != 0,
			Bytes:      size,
		}, nil
	default:
		return SnapshotInfo{Version: int(v), Bytes: size},
			fmt.Errorf("%s: snapshot version %d, this build reads %d and %d", path, v, Version, Version2)
	}
}
