package store

// Write-ahead mutation journal. A Journal is the durability companion of a
// packed snapshot: every mutation batch the serving layer accepts is
// appended (and synced) before the call returns, and a restarting process
// replays the journal on top of the last snapshot to reconstruct the exact
// live state. Compaction writes a fresh snapshot carrying the folded-in
// deltas and resets the journal to empty.
//
// # Format (version 1)
//
//	magic    [8]byte  "SEAJRNL\x00"
//	version  uint32   currently 1
//	records:
//	  seq    uint64   1-based batch sequence number, strictly increasing
//	  len    uint32   payload byte length
//	  payload []byte  JSON: either a flat array of mutate.Delta, or a
//	                  group-commit batch object {"groups":[[...],[...]]}
//	  crc    uint32   CRC-32 (Castagnoli) of seq+len+payload
//
// A record is one commit — one sequence number, one engine generation —
// whichever payload shape it carries. The group-commit write path
// (AppendGroups) coalesces several callers' delta groups into one record:
// a single group writes the flat-array shape (byte-identical to what a
// serial writer produces), several groups write the batch object, and the
// record is CRC'd as a unit either way, so a torn batch append rewinds
// whole and no partial batch ever replays. Readers (OpenJournal replay and
// TailJournal) understand both shapes and always surface the flattened
// delta list; the group boundaries ride along in JournalBatch.Groups.
//
// Records are self-checking: Open replays until the first short or
// corrupted record, truncates the file there (a torn tail from a crashed
// writer), and resumes appending after it. A journal whose header is
// unreadable reports cserr.ErrSnapshotCorrupt rather than silently starting
// over.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cserr"
	"repro/internal/faults"
	"repro/internal/mutate"
)

// Fault-injection sites in this file (armed via internal/faults; free when
// disarmed): "journal.open" fails OpenJournal, "journal.append" fails (or
// tears, with partial) the record write, "journal.fsync" fails the
// post-append sync, "journal.tail" fails TailJournal reads, and
// "snapshot.write" fails (or tears) AtomicWriteFile payloads.

// JournalVersion is the journal format version this build reads and writes.
const JournalVersion = 1

var journalMagic = [8]byte{'S', 'E', 'A', 'J', 'R', 'N', 'L', 0}

const journalHeaderLen = 12 // magic + version

// JournalBatch is one replayed journal record: one commit. Deltas is always
// the full flattened list, in application order, whatever shape the record
// was written in. Groups preserves the caller-group boundaries of a
// group-commit record (nil for a flat single-group record) — replay
// consumers that only need the state fold use Deltas and ignore it.
type JournalBatch struct {
	Seq    uint64
	Deltas []mutate.Delta
	Groups [][]mutate.Delta
}

// groupedPayload is the JSON shape of a multi-group record. The flat shape
// is a bare JSON array, so the two are distinguished by the first byte.
type groupedPayload struct {
	Groups [][]mutate.Delta `json:"groups"`
}

// Journal is an append-only write-ahead log of mutation batches. It is not
// safe for concurrent use; the catalog serializes appends per dataset.
type Journal struct {
	f       *os.File
	path    string
	seq     uint64 // last sequence number written or replayed
	batches int    // batches appended since the last reset (replay included)
	off     int64  // end offset of the last durable record

	// lastSyncNS is the fsync duration of the most recent successful Append
	// — the storage-latency component of the write path, surfaced through
	// MutateResult so callers can tell queueing from disk time.
	lastSyncNS int64
}

// OpenJournal opens (or creates) the journal at path and replays its
// records. A torn or corrupted tail — the residue of a crash mid-append —
// is truncated away; the replayed prefix is returned for the caller to
// re-apply on top of its snapshot.
func OpenJournal(path string) (*Journal, []JournalBatch, error) {
	if err := faults.Check("journal.open"); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{f: f, path: path}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if st.Size() == 0 {
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, nil, err
		}
		j.off = journalHeaderLen
		return j, nil, nil
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := checkJournalHeader(data, path); err != nil {
		f.Close()
		return nil, nil, err
	}

	batches, good := scanJournal(data)
	if n := len(batches); n > 0 {
		j.seq = batches[n-1].Seq
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j.batches = len(batches)
	j.off = int64(good)
	return j, batches, nil
}

// scanJournal walks the records of a journal image (header already
// validated), returning the replayable prefix and the byte offset of its
// end. The scan stops — without error — at the first torn, corrupted,
// undecodable or out-of-sequence record: everything from there on is tail
// residue for the caller to truncate (OpenJournal) or ignore (TailJournal).
func scanJournal(data []byte) (batches []JournalBatch, good int) {
	off := journalHeaderLen
	good = off
	var last uint64
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 12 {
			break // torn tail
		}
		seq := binary.LittleEndian.Uint64(rest[:8])
		plen := int(binary.LittleEndian.Uint32(rest[8:12]))
		if plen < 0 || len(rest) < 12+plen+4 {
			break // torn tail
		}
		sum := crc32.Checksum(rest[:12+plen], castagnoli)
		if sum != binary.LittleEndian.Uint32(rest[12+plen:12+plen+4]) {
			break // corrupted record: stop replay here
		}
		b, ok := decodePayload(rest[12 : 12+plen])
		if !ok {
			break // undecodable payload despite the checksum: treat as tail
		}
		if seq != last+1 {
			break // sequence gap: a truncated-then-reused file; stop
		}
		last = seq
		b.Seq = seq
		batches = append(batches, b)
		off += 12 + plen + 4
		good = off
	}
	return batches, good
}

// decodePayload parses one record payload, flat array or batch object, into
// a JournalBatch (Seq left for the caller). Both shapes yield the flattened
// delta list; the batch object additionally carries the group boundaries.
func decodePayload(payload []byte) (JournalBatch, bool) {
	i := 0
	for i < len(payload) && (payload[i] == ' ' || payload[i] == '\t' || payload[i] == '\n' || payload[i] == '\r') {
		i++
	}
	if i < len(payload) && payload[i] == '{' {
		var gp groupedPayload
		if err := json.Unmarshal(payload, &gp); err != nil || len(gp.Groups) == 0 {
			return JournalBatch{}, false
		}
		n := 0
		for _, g := range gp.Groups {
			n += len(g)
		}
		flat := make([]mutate.Delta, 0, n)
		for _, g := range gp.Groups {
			flat = append(flat, g...)
		}
		return JournalBatch{Deltas: flat, Groups: gp.Groups}, true
	}
	var deltas []mutate.Delta
	if err := json.Unmarshal(payload, &deltas); err != nil {
		return JournalBatch{}, false
	}
	return JournalBatch{Deltas: deltas}, true
}

// checkJournalHeader validates a journal image's magic and version.
func checkJournalHeader(data []byte, path string) error {
	if len(data) < journalHeaderLen {
		return fmt.Errorf("%w: %s: %d bytes is shorter than a journal header",
			cserr.ErrSnapshotCorrupt, path, len(data))
	}
	var head [8]byte
	copy(head[:], data)
	if head != journalMagic {
		return fmt.Errorf("%w: %s is not a mutation journal", cserr.ErrSnapshotVersion, path)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != JournalVersion {
		return fmt.Errorf("%w: %s: journal version %d, this build reads %d",
			cserr.ErrSnapshotVersion, path, v, JournalVersion)
	}
	return nil
}

// TailJournal reads the journal at path without taking ownership of it and
// returns the batches with sequence numbers strictly greater than after, in
// order. It is the replication-serving read path: the journal's writer keeps
// appending through its own handle while tails are served from independent
// read-only opens. A torn or not-yet-durable tail record is simply not
// returned (never truncated — the file belongs to the writer); the caller
// re-polls and sees it once the append completes. after at or beyond the
// last durable record yields an empty tail and no error.
func TailJournal(path string, after uint64) ([]JournalBatch, error) {
	if err := faults.Check("journal.tail"); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := checkJournalHeader(data, path); err != nil {
		return nil, err
	}
	batches, _ := scanJournal(data)
	for i, b := range batches {
		if b.Seq > after {
			return batches[i:], nil
		}
	}
	return nil, nil
}

func (j *Journal) writeHeader() error {
	var hdr [journalHeaderLen]byte
	copy(hdr[:], journalMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], JournalVersion)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	return j.f.Sync()
}

// Append writes one mutation batch and syncs it to stable storage before
// returning its sequence number. A failed append (short write, ENOSPC)
// truncates the file back to the last durable record, so a later
// successful append can never land after torn garbage that replay would
// stop at — an acknowledged batch is never silently discarded at boot.
func (j *Journal) Append(deltas []mutate.Delta) (uint64, error) {
	if len(deltas) == 0 {
		return 0, cserr.Invalidf("journal: empty mutation batch")
	}
	return j.append(deltas)
}

// AppendGroups writes one group-commit batch — several callers' delta
// groups — as ONE record: one sequence number, one CRC, one fsync. A
// single-group batch writes the flat record shape, byte-identical to
// Append; more groups write the batch-object shape. Either way the append
// is atomic at replay: a torn write rewinds whole, no partial batch ever
// replays.
func (j *Journal) AppendGroups(groups [][]mutate.Delta) (uint64, error) {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	if len(groups) == 0 || n == 0 {
		return 0, cserr.Invalidf("journal: empty commit batch")
	}
	if len(groups) == 1 {
		return j.append(groups[0])
	}
	return j.append(groupedPayload{Groups: groups})
}

// append marshals payload (a flat []mutate.Delta or a groupedPayload) into
// one record and commits it durably.
func (j *Journal) append(payload any) (uint64, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	seq := j.seq + 1
	rec := make([]byte, 12+len(body)+4)
	binary.LittleEndian.PutUint64(rec[:8], seq)
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(body)))
	copy(rec[12:], body)
	binary.LittleEndian.PutUint32(rec[12+len(body):], crc32.Checksum(rec[:12+len(body)], castagnoli))
	rewind := func(err error) (uint64, error) {
		if terr := j.f.Truncate(j.off); terr == nil {
			j.f.Seek(j.off, io.SeekStart)
		}
		return 0, err
	}
	if _, err := faults.Wrap("journal.append", j.f).Write(rec); err != nil {
		return rewind(err)
	}
	tSync := time.Now()
	if err := faults.Check("journal.fsync"); err != nil {
		return rewind(err)
	}
	if err := j.f.Sync(); err != nil {
		return rewind(err)
	}
	j.lastSyncNS = time.Since(tSync).Nanoseconds()
	j.seq = seq
	j.batches++
	j.off += int64(len(rec))
	return seq, nil
}

// Batches returns the number of batches the journal currently holds.
func (j *Journal) Batches() int { return j.batches }

// Seq returns the last written sequence number (0 for an empty journal).
func (j *Journal) Seq() uint64 { return j.seq }

// LastSyncNS returns the fsync duration of the most recent successful
// Append in nanoseconds (0 before the first append).
func (j *Journal) LastSyncNS() int64 { return j.lastSyncNS }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Reset empties the journal after a compaction has folded its batches into
// a snapshot. The sequence numbering restarts.
func (j *Journal) Reset() error {
	if err := j.f.Truncate(journalHeaderLen); err != nil {
		return err
	}
	if _, err := j.f.Seek(journalHeaderLen, io.SeekStart); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.seq = 0
	j.batches = 0
	j.off = journalHeaderLen
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// AtomicWriteFile streams write's output to a temp file in path's directory
// and renames it into place only on success, so rewriting over an existing
// good file can never destroy it. It returns the written size. It is the
// write discipline behind snapshot packing and journal compaction.
func AtomicWriteFile(path string, write func(io.Writer) error) (int64, error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := write(faults.Wrap("snapshot.write", f)); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return st.Size(), nil
}
