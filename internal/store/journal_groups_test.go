package store

// Group-commit journal records: AppendGroups writes one record — one seq,
// one CRC, one fsync — for a whole coalesced batch; readers understand both
// the flat and the grouped payload shape and always surface the flattened
// delta list.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cserr"
	"repro/internal/faults"
	"repro/internal/mutate"
)

// TestAppendGroupsSingleIsFlat proves a one-group batch writes the legacy
// flat record shape byte for byte: the two journals are identical files.
func TestAppendGroupsSingleIsFlat(t *testing.T) {
	dir := t.TempDir()
	group := testBatches()[0]

	flatPath := filepath.Join(dir, "flat.journal")
	jf, _, err := OpenJournal(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Append(group); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	groupedPath := filepath.Join(dir, "grouped.journal")
	jg, _, err := OpenJournal(groupedPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jg.AppendGroups([][]mutate.Delta{group}); err != nil {
		t.Fatal(err)
	}
	jg.Close()

	a, err := os.ReadFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(groupedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("a single-group AppendGroups record differs from Append's flat shape")
	}
}

// TestAppendGroupsReplaysBothShapes interleaves flat and grouped records
// and proves replay surfaces every record in order, with the grouped
// record's deltas flattened and its group boundaries preserved.
func TestAppendGroupsReplaysBothShapes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	flat := testBatches()[0]
	groups := [][]mutate.Delta{testBatches()[1], testBatches()[2]}
	if seq, err := j.Append(flat); err != nil || seq != 1 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	if seq, err := j.AppendGroups(groups); err != nil || seq != 2 {
		t.Fatalf("grouped record: seq=%d err=%v — one batch, ONE seq", seq, err)
	}
	if seq, err := j.Append(flat); err != nil || seq != 3 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	j.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d records, want 3", len(replayed))
	}
	if !reflect.DeepEqual(replayed[0].Deltas, flat) || replayed[0].Groups != nil {
		t.Fatalf("flat record 1: %+v", replayed[0])
	}
	wantFlattened := append(append([]mutate.Delta{}, groups[0]...), groups[1]...)
	if !reflect.DeepEqual(replayed[1].Deltas, wantFlattened) {
		t.Fatalf("grouped record must flatten for replay: %+v", replayed[1].Deltas)
	}
	if !reflect.DeepEqual(replayed[1].Groups, groups) {
		t.Fatalf("grouped record must keep group boundaries: %+v", replayed[1].Groups)
	}
	if replayed[1].Seq != 2 || replayed[2].Seq != 3 {
		t.Fatalf("sequence numbering across shapes: %d, %d", replayed[1].Seq, replayed[2].Seq)
	}
}

// TestAppendGroupsEmptyRejected proves degenerate batches never reach the
// file.
func TestAppendGroupsEmptyRejected(t *testing.T) {
	j, _, err := OpenJournal(filepath.Join(t.TempDir(), "g.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, groups := range [][][]mutate.Delta{nil, {}, {{}}, {{}, {}}} {
		if _, err := j.AppendGroups(groups); !errors.Is(err, cserr.ErrInvalidRequest) {
			t.Fatalf("AppendGroups(%v): %v, want ErrInvalidRequest", groups, err)
		}
	}
	if j.Batches() != 0 {
		t.Fatalf("degenerate batches landed: %d", j.Batches())
	}
}

// TestTornGroupedAppendRewindsWhole injects a partial write into a grouped
// append and proves the batch-record rewind discipline: no bytes of the
// torn record survive, the journal stays usable, and a reopen replays only
// the intact records — no partial batch ever replays.
func TestTornGroupedAppendRewindsWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	intact := testBatches()[0]
	if _, err := j.Append(intact); err != nil {
		t.Fatal(err)
	}

	faults.Enable(3, faults.Spec{Site: "journal.append", Count: 1, Partial: true, Err: "enospc"})
	defer faults.Disable()
	groups := [][]mutate.Delta{testBatches()[1], testBatches()[2]}
	if _, err := j.AppendGroups(groups); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn grouped append: %v, want the injected fault", err)
	}
	if j.Batches() != 1 || j.Seq() != 1 {
		t.Fatalf("torn record must rewind whole: Batches=%d Seq=%d", j.Batches(), j.Seq())
	}

	// The journal keeps working after the rewind, and the retried batch
	// lands intact.
	faults.Disable()
	if seq, err := j.AppendGroups(groups); err != nil || seq != 2 {
		t.Fatalf("retry after rewind: seq=%d err=%v", seq, err)
	}
	j.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2 (no partial batch)", len(replayed))
	}
	if !reflect.DeepEqual(replayed[1].Groups, groups) {
		t.Fatalf("retried batch: %+v", replayed[1])
	}
}

// TestTailJournalSurfacesGroupedRecords proves the replication tail reads
// grouped records too, flattened — the shape followers fold.
func TestTailJournalSurfacesGroupedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	groups := [][]mutate.Delta{testBatches()[0], testBatches()[1]}
	if _, err := j.AppendGroups(groups); err != nil {
		t.Fatal(err)
	}
	tail, err := TailJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 {
		t.Fatalf("tail returned %d records, want 1", len(tail))
	}
	wantFlattened := append(append([]mutate.Delta{}, groups[0]...), groups[1]...)
	if !reflect.DeepEqual(tail[0].Deltas, wantFlattened) {
		t.Fatalf("tailed grouped record: %+v", tail[0].Deltas)
	}
}
