package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cserr"
	"repro/internal/mutate"
)

func testBatches() [][]mutate.Delta {
	return [][]mutate.Delta{
		{mutate.AddEdge(1, 2), mutate.RemoveEdge(3, 4)},
		{mutate.AddNode([]string{"a", "b"}, []float64{0.5})},
		{mutate.SetAttr(7, []string{"x"}, nil), mutate.SetAttr(8, nil, []float64{1, 2})},
	}
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	j, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 || j.Batches() != 0 || j.Seq() != 0 {
		t.Fatalf("fresh journal: %d batches, seq %d", j.Batches(), j.Seq())
	}
	want := testBatches()
	for i, b := range want {
		seq, err := j.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if _, err := j.Append(nil); !errors.Is(err, cserr.ErrInvalidRequest) {
		t.Fatalf("empty batch: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != len(want) || j2.Batches() != len(want) || j2.Seq() != uint64(len(want)) {
		t.Fatalf("replayed %d batches, Batches=%d Seq=%d", len(replayed), j2.Batches(), j2.Seq())
	}
	for i, b := range replayed {
		if b.Seq != uint64(i+1) || !reflect.DeepEqual(b.Deltas, want[i]) {
			t.Fatalf("batch %d: %+v, want %+v", i, b, want[i])
		}
	}
	// Appending after replay continues the sequence.
	if seq, err := j2.Append(want[0]); err != nil || seq != 4 {
		t.Fatalf("append after replay: seq=%d err=%v", seq, err)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testBatches()
	for _, b := range want {
		if _, err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: write half a record.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, full...), 0x01, 0x02, 0x03)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(replayed), len(want))
	}
	// The torn bytes are gone and appends go to the right offset.
	if _, err := j2.Append(want[1]); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, replayed, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(want)+1 {
		t.Fatalf("after truncate+append: %d batches, want %d", len(replayed), len(want)+1)
	}

	// A flipped byte inside a record stops replay at the previous batch.
	full, _ = os.ReadFile(path)
	full[journalHeaderLen+20] ^= 0xFF
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	j4, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if len(replayed) != 0 {
		t.Fatalf("corrupt first record must stop replay, got %d batches", len(replayed))
	}
}

func TestJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, b := range testBatches() {
		if _, err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if j.Batches() != 0 || j.Seq() != 0 {
		t.Fatalf("after reset: Batches=%d Seq=%d", j.Batches(), j.Seq())
	}
	if seq, err := j.Append(testBatches()[0]); err != nil || seq != 1 {
		t.Fatalf("append after reset: seq=%d err=%v", seq, err)
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-journal")
	if err := os.WriteFile(path, []byte("definitely a text file, not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); !errors.Is(err, cserr.ErrSnapshotVersion) {
		t.Fatalf("foreign file: %v", err)
	}
}
