package store

// Zero-copy snapshot serving. OpenMapped memory-maps a version-2 aligned
// snapshot and reinterprets its sections in place: the CSR arrays, attribute
// columns and index arrays are served straight from the page cache with no
// read, no copy and no per-element decode, so boot cost is O(header + dict),
// independent of graph size. The mapping is read-only (PROT_READ); every
// consumer reaches it through the read-only graph.Store interface, and
// mutations build heap overlays on top (graph.Overlay) without ever writing
// the mapped pages.
//
// OpenMapped degrades gracefully: a legacy v1 snapshot, a platform without
// mmap, or a section whose payload lands misaligned in memory falls back to
// the heap open (or a per-section copy) — same Snapshot semantics, just not
// zero-copy. Callers can tell which they got from Mounted.Mapped.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"unsafe"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/graph"
)

// errMmapUnsupported marks platforms (or file shapes) the mmap fast path
// cannot serve; OpenMapped falls back to the heap open.
var errMmapUnsupported = errors.New("store: mmap unsupported")

// Mounted is an opened serving backing plus the resources behind it: for a
// mapped snapshot, the live memory mapping. The Store (and the Index arrays)
// may alias the mapping — Close only once nothing reaches the backing
// anymore. In-flight readers on a hot-swapped-away Mounted must be drained
// before Close (the catalog retires old mappings and unmaps them only at
// Catalog.Close).
type Mounted struct {
	// Store is the serving backing: a zero-copy *graph.Graph or *PackedGraph
	// over the mapping, or a heap backing when the fast path fell back.
	Store graph.Store
	// Index is the snapshot's precomputed index section (nil when absent).
	// Its arrays may alias the mapping and are read-only.
	Index *Index
	// Info describes the on-disk snapshot (zero value for text-format mounts).
	Info SnapshotInfo

	data []byte // the mmap region; nil when the backing is heap-resident
}

// Mapped reports whether the backing serves zero-copy from a memory mapping.
func (m *Mounted) Mapped() bool { return m != nil && m.data != nil }

// MappedBytes returns the size of the live mapping (0 when heap-resident).
func (m *Mounted) MappedBytes() int64 {
	if m == nil {
		return 0
	}
	return int64(len(m.data))
}

// Snapshot adapts the Mounted backing to the *Snapshot shape shared with the
// heap open paths. Graph is set only when the backing is a CSR *graph.Graph.
func (m *Mounted) Snapshot() *Snapshot {
	g, _ := m.Store.(*graph.Graph)
	return &Snapshot{Graph: g, Store: m.Store, Index: m.Index, Info: m.Info}
}

// Close unmaps the snapshot. The Store and Index become invalid; accessing
// them afterwards faults. Close is a no-op for heap-resident backings and is
// not safe to call while readers are live.
func (m *Mounted) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	m.Store = nil
	m.Index = nil
	return munmap(data)
}

// OpenMapped opens the snapshot at path for zero-copy serving. A version-2
// aligned snapshot maps read-only and serves straight from the page cache —
// O(1) in the graph size (only the header, section table and dictionary are
// touched); a v1 snapshot or an mmap-less platform falls back to the heap
// open, returning a Mounted with Mapped() == false.
//
// The mapped fast path validates the header and section table but — by
// design — not the payload checksum or per-element structure: both were
// validated when the snapshot was written (and OpenFile re-verifies them on
// any heap open). A torn or corrupted file still fails fast on the O(1)
// header/table/shape checks.
func OpenMapped(path string) (*Mounted, error) {
	if err := faults.Check("snapshot.open"); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(magic))+4 {
		return nil, fmt.Errorf("%s: not a snapshot (%d bytes)", path, size)
	}
	var head [12]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if *(*[8]byte)(head[:8]) != magic {
		return nil, fmt.Errorf("%s: not a snapshot file", path)
	}
	if binary.LittleEndian.Uint32(head[8:]) != Version2 {
		return heapFallback(path) // legacy v1 layout: not mappable
	}
	data, err := mmapFile(f, size)
	if err != nil {
		if errors.Is(err, errMmapUnsupported) {
			return heapFallback(path)
		}
		return nil, fmt.Errorf("%s: mmap: %w", path, err)
	}
	m, err := mountMapped(data, size)
	if err != nil {
		munmap(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// heapFallback is the non-zero-copy path of OpenMapped: a fully verified
// heap open wrapped in a Mounted with no mapping.
func heapFallback(path string) (*Mounted, error) {
	snap, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &Mounted{Store: snap.Store, Index: snap.Index, Info: snap.Info}, nil
}

// mountMapped builds the zero-copy backing over a live mapping.
func mountMapped(data []byte, size int64) (*Mounted, error) {
	flags, secs, err := parseV2Table(data, size)
	if err != nil {
		return nil, err
	}
	meta, err := parseV2Meta(data, secs)
	if err != nil {
		return nil, err
	}
	i32sec := func(id uint32, n int) ([]int32, error) {
		b, err := sectionBytes(data, secs, id, 4*int64(n))
		if err != nil {
			return nil, err
		}
		return castI32s(b), nil
	}
	f64sec := func(id uint32, n int) ([]float64, error) {
		b, err := sectionBytes(data, secs, id, 8*int64(n))
		if err != nil {
			return nil, err
		}
		return castF64s(b), nil
	}
	offsets, err := i32sec(secOffsets, meta.n+1)
	if err != nil {
		return nil, err
	}
	textOff, err := i32sec(secTextOff, meta.n+1)
	if err != nil {
		return nil, err
	}
	text, err := i32sec(secText, meta.textLen)
	if err != nil {
		return nil, err
	}
	num, err := f64sec(secNum, meta.n*meta.numDim)
	if err != nil {
		return nil, err
	}
	dsec, ok := findSection(secs, secDict)
	if !ok {
		return nil, fmt.Errorf("snapshot has no dict section")
	}
	// The dictionary is the one always-heap piece: Go strings cannot alias
	// the mapping safely across unmap. O(vocabulary), not O(graph).
	names, err := decodeDict(data[dsec.off:dsec.off+dsec.size], meta.dictLen)
	if err != nil {
		return nil, err
	}

	var backing graph.Store
	if flags&flagCompressed != 0 {
		packOff, err := func() ([]int64, error) {
			b, err := sectionBytes(data, secs, secPackOff, 8*int64(meta.n+1))
			if err != nil {
				return nil, err
			}
			return castI64s(b), nil
		}()
		if err != nil {
			return nil, err
		}
		bsec, ok := findSection(secs, secPackBlob)
		if !ok {
			return nil, fmt.Errorf("snapshot has no packblob section")
		}
		pg, err := newPackedGraph(meta, offsets, packOff, data[bsec.off:bsec.off+bsec.size],
			textOff, text, num, names)
		if err != nil {
			return nil, err
		}
		backing = pg
	} else {
		adj, err := i32sec(secAdj, 2*meta.edges)
		if err != nil {
			return nil, err
		}
		g, err := graph.FromRawTrusted(graph.Raw{
			Offsets: offsets, Adj: adj,
			TextOff: textOff, Text: text,
			NumDim: meta.numDim, Num: num,
			DictNames: names,
		})
		if err != nil {
			return nil, err
		}
		backing = g
	}

	var idx *Index
	if flags&flagIndex != 0 {
		idx = &Index{}
		if idx.Coreness, err = i32sec(secCoreness, meta.n); err != nil {
			return nil, err
		}
		if _, ok := findSection(secs, secNodeTruss); ok {
			if idx.NodeTruss, err = i32sec(secNodeTruss, meta.n); err != nil {
				return nil, err
			}
		}
		if idx.NormMin, err = f64sec(secNormMin, meta.numDim); err != nil {
			return nil, err
		}
		if idx.NormMax, err = f64sec(secNormMax, meta.numDim); err != nil {
			return nil, err
		}
	}
	return &Mounted{
		Store: backing,
		Index: idx,
		Info: SnapshotInfo{
			Version:    Version2,
			Sections:   sectionList(secs),
			Aligned:    true,
			Compressed: flags&flagCompressed != 0,
			Index:      idx != nil,
			Bytes:      size,
		},
		data: data,
	}, nil
}

// MountGraphFile is OpenGraphFile's zero-copy sibling: a v2 snapshot maps
// read-only, a v1 snapshot heap-opens, anything else parses as the text
// exchange format. The one mapped-serving open path for catalog and CLI.
func MountGraphFile(path string) (*Mounted, error) {
	info, err := DetectFile(path)
	if err != nil {
		return nil, err
	}
	if info.Version != 0 {
		return OpenMapped(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := dataset.LoadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Mounted{Store: g}, nil
}

// castI32s reinterprets a little-endian byte section as []int32 without
// copying. A misaligned base (cannot happen for sections of an aligned
// mapping, but cheap to guard) falls back to a heap decode.
func castI32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 || !hostLittleEndian() {
		return decodeI32s(b)
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castI64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 || !hostLittleEndian() {
		return decodeI64s(b)
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func castF64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 || !hostLittleEndian() {
		return decodeF64s(b)
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// hostLittleEndian reports whether the host byte order matches the on-disk
// little-endian encoding; big-endian hosts decode instead of casting.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
