//go:build !unix

package store

import "os"

// Platforms without the unix mmap syscall surface serve snapshots from the
// heap; OpenMapped falls back transparently.
func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errMmapUnsupported }

func munmap(b []byte) error { return nil }
