//go:build unix

package store

import (
	"math"
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only and shared: the pages stay backed
// by the page cache, so concurrently serving the same snapshot from several
// processes shares one physical copy.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size > math.MaxInt {
		return nil, errMmapUnsupported
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
