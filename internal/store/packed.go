package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// PackedGraph is the delta+varint compressed graph backing: the adjacency
// lives as per-node uvarint-encoded byte runs (see the format comment in
// format2.go) and every other column stays flat, so the whole structure
// serves either from heap slices (compressed snapshot opened with OpenFile)
// or zero-copy from an mmap'd snapshot (OpenMapped). It implements
// graph.Store: Degree and ListOffset stay O(1) through the retained element
// offsets; NeighborsInto decodes one list into caller scratch in O(degree).
//
// A PackedGraph is immutable and safe for concurrent readers as long as each
// goroutine uses its own scratch buffers, exactly like a heap *Graph.
type PackedGraph struct {
	n       int
	edges   int
	offsets []int32 // CSR element offsets, len n+1
	packOff []int64 // per-node byte offsets into blob, len n+1
	blob    []byte  // uvarint-encoded neighbor deltas
	textOff []int32
	text    []int32
	numDim  int
	num     []float64
	dict    *graph.Dict
}

var _ graph.Store = (*PackedGraph)(nil)

// newPackedGraph assembles a PackedGraph from decoded (or mapped) sections,
// checking only the O(1) shape invariants that keep accessors memory-safe.
// Heap opens follow up with validate(); mapped opens trust write-time
// validation (the mapped-boot contract, same as graph.FromRawTrusted).
func newPackedGraph(meta v2Meta, offsets []int32, packOff []int64, blob []byte,
	textOff []int32, text []int32, num []float64, names []string) (*PackedGraph, error) {
	n := meta.n
	if len(offsets) != n+1 || offsets[0] != 0 || int(offsets[n]) != 2*meta.edges {
		return nil, fmt.Errorf("store: packed: offsets span [%d,%d], want [0,%d]",
			offsets[0], offsets[n], 2*meta.edges)
	}
	if len(packOff) != n+1 || packOff[0] != 0 || packOff[n] != int64(len(blob)) {
		return nil, fmt.Errorf("store: packed: blob offsets span [%d,%d], payload %d bytes",
			packOff[0], packOff[n], len(blob))
	}
	if len(textOff) != n+1 || textOff[0] != 0 || int(textOff[n]) != len(text) {
		return nil, fmt.Errorf("store: packed: text offsets span [%d,%d], payload %d",
			textOff[0], textOff[n], len(text))
	}
	if len(num) != n*meta.numDim {
		return nil, fmt.Errorf("store: packed: len(num) = %d, want %d·%d", len(num), n, meta.numDim)
	}
	dict, err := graph.NewDictFromNames(names)
	if err != nil {
		return nil, err
	}
	return &PackedGraph{
		n: n, edges: meta.edges,
		offsets: offsets, packOff: packOff, blob: blob,
		textOff: textOff, text: text,
		numDim: meta.numDim, num: num,
		dict: dict,
	}, nil
}

// validate decodes every neighbor list once and checks the structural
// invariants a heap open guarantees: per-node byte runs consume exactly
// their span, lists strictly ascending, neighbors in range, no self-loops,
// element offsets monotone. O(n+m); the mapped open skips it by design.
func (p *PackedGraph) validate() error {
	var buf []graph.NodeID
	for v := 0; v < p.n; v++ {
		if p.offsets[v+1] < p.offsets[v] {
			return fmt.Errorf("packed: offsets decreasing at node %d", v)
		}
		if p.packOff[v+1] < p.packOff[v] {
			return fmt.Errorf("packed: blob offsets decreasing at node %d", v)
		}
		if p.textOff[v+1] < p.textOff[v] {
			return fmt.Errorf("packed: text offsets decreasing at node %d", v)
		}
		ns, err := p.neighborsChecked(&buf, graph.NodeID(v))
		if err != nil {
			return err
		}
		prev := graph.NodeID(-1)
		for _, u := range ns {
			switch {
			case int(u) < 0 || int(u) >= p.n:
				return fmt.Errorf("packed: node %d: neighbor %d out of range [0,%d)", v, u, p.n)
			case u == graph.NodeID(v):
				return fmt.Errorf("packed: node %d: self-loop", v)
			case u <= prev:
				return fmt.Errorf("packed: node %d: neighbors not sorted/unique at %d", v, u)
			}
			prev = u
		}
		for i, id := range p.text[p.textOff[v]:p.textOff[v+1]] {
			if int(id) < 0 || int(id) >= p.dict.Len() {
				return fmt.Errorf("packed: node %d: token %d outside dictionary", v, id)
			}
			if i > 0 && id <= p.text[int(p.textOff[v])+i-1] {
				return fmt.Errorf("packed: node %d: tokens not sorted/unique", v)
			}
		}
	}
	return nil
}

// neighborsChecked is NeighborsInto with malformed-varint detection, used
// only by validate — the hot path assumes validated bytes.
func (p *PackedGraph) neighborsChecked(buf *[]graph.NodeID, v graph.NodeID) ([]graph.NodeID, error) {
	deg := int(p.offsets[v+1] - p.offsets[v])
	out := ensureCap(buf, deg)
	b := p.blob[p.packOff[v]:p.packOff[v+1]]
	prev := int64(0)
	for i := 0; i < deg; i++ {
		d, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, fmt.Errorf("packed: node %d: bad varint at neighbor %d", v, i)
		}
		b = b[k:]
		if i == 0 {
			prev = int64(d)
		} else {
			prev += int64(d)
		}
		out[i] = graph.NodeID(prev)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("packed: node %d: %d trailing bytes in neighbor run", v, len(b))
	}
	return out, nil
}

func ensureCap(buf *[]graph.NodeID, n int) []graph.NodeID {
	if cap(*buf) < n {
		*buf = make([]graph.NodeID, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// NumNodes implements graph.Adjacency.
func (p *PackedGraph) NumNodes() int { return p.n }

// NumEdges implements graph.Adjacency.
func (p *PackedGraph) NumEdges() int { return p.edges }

// Degree implements graph.Adjacency in O(1) via the element offsets.
func (p *PackedGraph) Degree(v graph.NodeID) int {
	return int(p.offsets[v+1] - p.offsets[v])
}

// ListOffset implements graph.CSR: the element offsets are stored verbatim,
// so positional edge IDs match the equivalent heap CSR exactly.
func (p *PackedGraph) ListOffset(v graph.NodeID) int32 { return p.offsets[v] }

// NeighborsInto implements graph.Adjacency by decoding v's delta+uvarint run
// into *buf (growing it as needed) — O(degree), zero allocation once the
// scratch has warmed up.
func (p *PackedGraph) NeighborsInto(buf *[]graph.NodeID, v graph.NodeID) []graph.NodeID {
	deg := int(p.offsets[v+1] - p.offsets[v])
	out := ensureCap(buf, deg)
	b := p.blob[p.packOff[v]:p.packOff[v+1]]
	prev := int64(0)
	for i := 0; i < deg; i++ {
		d, k := binary.Uvarint(b)
		b = b[k:]
		if i == 0 {
			prev = int64(d)
		} else {
			prev += int64(d)
		}
		out[i] = graph.NodeID(prev)
	}
	return out
}

// HasEdge implements graph.Adjacency by streaming the shorter endpoint's run
// with an early exit — the deltas are ≥1, so the decoded values ascend.
func (p *PackedGraph) HasEdge(u, v graph.NodeID) bool {
	if p.Degree(u) > p.Degree(v) {
		u, v = v, u
	}
	b := p.blob[p.packOff[u]:p.packOff[u+1]]
	deg := p.Degree(u)
	prev := int64(0)
	for i := 0; i < deg; i++ {
		d, k := binary.Uvarint(b)
		b = b[k:]
		if i == 0 {
			prev = int64(d)
		} else {
			prev += int64(d)
		}
		switch {
		case prev == int64(v):
			return true
		case prev > int64(v):
			return false
		}
	}
	return false
}

// NumDim implements graph.AttrSource.
func (p *PackedGraph) NumDim() int { return p.numDim }

// TextAttrs implements graph.AttrSource; the slice aliases backing storage.
func (p *PackedGraph) TextAttrs(v graph.NodeID) []int32 {
	return p.text[p.textOff[v]:p.textOff[v+1]]
}

// NumAttrs implements graph.AttrSource; the slice aliases backing storage.
func (p *PackedGraph) NumAttrs(v graph.NodeID) []float64 {
	if p.numDim == 0 {
		return nil
	}
	return p.num[int(v)*p.numDim : (int(v)+1)*p.numDim]
}

// Dict implements graph.AttrSource.
func (p *PackedGraph) Dict() *graph.Dict { return p.dict }

// PackedBytes returns the compressed adjacency payload size in bytes,
// against 4·2·NumEdges for the flat encoding.
func (p *PackedGraph) PackedBytes() int64 { return int64(len(p.blob)) }
