// Package store persists the full serving state of an attributed graph — the
// CSR arrays, the attribute dictionary, the text/numeric attribute columns,
// and the Engine's precomputed admission indexes — as one versioned,
// checksummed binary snapshot. A snapshot reopens into a ready-to-serve
// graph + index with zero parsing and zero recomputation, which is what
// makes boot-fast multi-dataset serving (internal/catalog) possible: the
// text exchange format of internal/dataset is the interchange form, the
// snapshot is the serving form.
//
// Two on-disk layouts exist: the legacy version-1 stream below, and the
// version-2 aligned section-table layout (format2.go) that OpenMapped can
// serve zero-copy from the page cache and that optionally stores the
// adjacency delta+varint compressed (PackedGraph). Write emits v1;
// WriteSnapshot with PackOptions selects the layout. Every open path reads
// both versions.
//
// # Format (version 1)
//
// All integers are little-endian and fixed-width; arrays are stored raw with
// their lengths derived from the header fields.
//
//	magic    [8]byte  "SEASNAP\x00"
//	version  uint32   currently 1
//	flags    uint32   bit 0: index section present
//
//	-- graph section --
//	n        uint64   number of nodes
//	a        uint64   len(adj) = 2·edges
//	offsets  [n+1]int32
//	adj      [a]int32
//	t        uint64   len(text)
//	textOff  [n+1]int32
//	text     [t]int32
//	numDim   uint32
//	num      [n·numDim]float64
//	dictLen  uint32
//	names    dictLen × (uint32 byteLen + bytes)
//
//	-- index section (iff flags bit 0) --
//	coreness [n]int32
//	hasTruss uint8
//	truss    [n]int32 (iff hasTruss)
//	normMin  [numDim]float64
//	normMax  [numDim]float64
//
//	crc      uint32   CRC-32 (Castagnoli) of every preceding byte
//
// # Guarantees
//
// Write produces a deterministic byte stream for a given graph + index.
// Open verifies the magic and version (cserr.ErrSnapshotVersion on
// mismatch), the trailing checksum, and the structural invariants of every
// array (offsets monotone, adjacency sorted/symmetric/loop-free, tokens
// within the dictionary — see graph.FromRaw); any violation reports
// cserr.ErrSnapshotCorrupt. A snapshot that opens without error is
// semantically identical to the state that was written: the same query
// yields a byte-identical outcome.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/cserr"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/graph"
)

// Version is the snapshot format version this build reads and writes.
const Version = 1

// magic identifies a snapshot stream; it is deliberately not valid UTF-8
// text so the text-format loader can never misread one.
var magic = [8]byte{'S', 'E', 'A', 'S', 'N', 'A', 'P', 0}

const flagIndex = 1 << 0

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Index is the serializable form of the Engine's precomputed per-graph
// state: the structural admission indexes and the attribute-metric
// normalization table. NodeTruss may be nil (the engine builds it lazily);
// NormMin/NormMax have the graph's NumDim width.
type Index struct {
	// Coreness holds each node's coreness, len NumNodes.
	Coreness []int32
	// NodeTruss holds each node's maximum incident-edge trussness, len
	// NumNodes, or nil when the truss index was never built.
	NodeTruss []int32
	// NormMin/NormMax are the per-dimension numerical attribute bounds the
	// metric normalizer scales by, len NumDim.
	NormMin, NormMax []float64
}

// Snapshot is the reopened serving state: the graph backing and, when the
// snapshot carried one, the precomputed index.
type Snapshot struct {
	// Graph is the heap CSR graph, or nil when the backing is not a
	// materialized *graph.Graph (a compressed open serves a PackedGraph —
	// use Store, or graph.CopyStore to materialize).
	Graph *graph.Graph
	// Store is the serving backing every open path fills: identical to
	// Graph for heap CSR opens, a *PackedGraph for compressed ones.
	Store graph.Store
	Index *Index // nil when the snapshot has no index section
	// Info describes the on-disk form the snapshot came from (zero value
	// for text-format opens).
	Info SnapshotInfo
}

// Backing returns the serving store of the snapshot, tolerating
// hand-assembled Snapshots that only set Graph.
func (s *Snapshot) Backing() graph.Store {
	if s.Store != nil {
		return s.Store
	}
	if s.Graph != nil {
		return s.Graph
	}
	return nil
}

// Write serializes g and idx to w in the snapshot format. idx may be nil to
// write a graph-only snapshot. The stream is checksummed; Write buffers
// nothing beyond small scratch, so it streams large graphs directly to disk.
func Write(w io.Writer, g *graph.Graph, idx *Index) error {
	if g == nil {
		return fmt.Errorf("store: nil graph")
	}
	raw := g.Export()
	n := g.NumNodes()
	if idx != nil {
		if len(idx.Coreness) != n {
			return fmt.Errorf("store: index coreness length %d, graph has %d nodes", len(idx.Coreness), n)
		}
		if idx.NodeTruss != nil && len(idx.NodeTruss) != n {
			return fmt.Errorf("store: index truss length %d, graph has %d nodes", len(idx.NodeTruss), n)
		}
		if len(idx.NormMin) != raw.NumDim || len(idx.NormMax) != raw.NumDim {
			return fmt.Errorf("store: index bounds width %d/%d, graph NumDim %d",
				len(idx.NormMin), len(idx.NormMax), raw.NumDim)
		}
	}

	crc := crc32.New(castagnoli)
	ew := &encoder{w: io.MultiWriter(w, crc)}
	ew.bytes(magic[:])
	ew.u32(Version)
	var flags uint32
	if idx != nil {
		flags |= flagIndex
	}
	ew.u32(flags)

	ew.u64(uint64(n))
	ew.u64(uint64(len(raw.Adj)))
	ew.i32s(raw.Offsets)
	ew.i32s(raw.Adj)
	ew.u64(uint64(len(raw.Text)))
	ew.i32s(raw.TextOff)
	ew.i32s(raw.Text)
	ew.u32(uint32(raw.NumDim))
	ew.f64s(raw.Num)
	ew.u32(uint32(len(raw.DictNames)))
	for _, name := range raw.DictNames {
		ew.u32(uint32(len(name)))
		ew.bytes([]byte(name))
	}

	if idx != nil {
		ew.i32s(idx.Coreness)
		if idx.NodeTruss != nil {
			ew.u8(1)
			ew.i32s(idx.NodeTruss)
		} else {
			ew.u8(0)
		}
		ew.f64s(idx.NormMin)
		ew.f64s(idx.NormMax)
	}
	if ew.err != nil {
		return ew.err
	}
	// The trailer is the checksum of everything above; it goes to w only.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// Open reads one snapshot from r, verifying version, checksum and structure,
// and returns the ready-to-serve graph + index. Errors classify as
// cserr.ErrSnapshotVersion (wrong magic or version) or
// cserr.ErrSnapshotCorrupt (anything else wrong with the bytes).
func Open(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return Decode(data)
}

// OpenFile opens the snapshot at path. Unlike Open over an arbitrary
// reader, the file's size is known up front, so the bytes are read in one
// pre-sized allocation.
func OpenFile(path string) (*Snapshot, error) {
	if err := faults.Check("snapshot.open"); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// OpenGraphFile opens a graph file in either on-disk form, sniffing the
// snapshot magic to pick the decoder: a packed snapshot opens with its
// index, anything else parses as the text exchange format (Index nil). It
// is the one open-either-format path shared by the catalog and the CLI.
// (MountGraphFile is the zero-copy sibling.)
func OpenGraphFile(path string) (*Snapshot, error) {
	info, err := DetectFile(path)
	if err != nil {
		return nil, err
	}
	if info.IsSnapshot() {
		return OpenFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := dataset.LoadGraph(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Snapshot{Graph: g, Store: g}, nil
}

// Decode is Open over bytes already in memory. It dispatches on the format
// version: 1 is the legacy stream below, 2 the aligned section-table layout
// (see format2.go).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+8+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", cserr.ErrSnapshotCorrupt, len(data))
	}
	var head [8]byte
	copy(head[:], data)
	if head != magic {
		return nil, fmt.Errorf("%w: bad magic (not a snapshot file)", cserr.ErrSnapshotVersion)
	}
	switch v := binary.LittleEndian.Uint32(data[8:]); v {
	case Version:
		return decodeV1(data)
	case Version2:
		return decodeV2(data)
	default:
		return nil, fmt.Errorf("%w: version %d, this build reads %d and %d", cserr.ErrSnapshotVersion, v, Version, Version2)
	}
}

// decodeV1 decodes the legacy v1 stream. The structural parse runs before
// the checksum so a truncated file reports the section the bytes ran out in
// (not a bare checksum mismatch); a file whose lengths parse but whose bytes
// are damaged still fails the checksum before any array is trusted.
func decodeV1(data []byte) (*Snapshot, error) {
	body, tail := data[:len(data)-4], data[len(data)-4:]
	d := &decoder{data: body, off: 12, sec: "header"}
	flags := d.u32()
	if d.err == nil && flags&^uint32(flagIndex) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", cserr.ErrSnapshotVersion, flags)
	}

	d.sec = "meta"
	n := d.count("nodes")
	a := d.count("adjacency")
	raw := graph.Raw{}
	d.sec = "offsets"
	raw.Offsets = d.i32s(n + 1)
	d.sec = "adj"
	raw.Adj = d.i32s(a)
	d.sec = "meta"
	t := d.count("text tokens")
	d.sec = "textoff"
	raw.TextOff = d.i32s(n + 1)
	d.sec = "text"
	raw.Text = d.i32s(t)
	d.sec = "meta"
	raw.NumDim = int(d.u32())
	if d.err == nil && (raw.NumDim < 0 || (raw.NumDim > 0 && n > math.MaxInt/raw.NumDim)) {
		d.fail(fmt.Errorf("numDim %d overflows", raw.NumDim))
	}
	d.sec = "num"
	raw.Num = d.f64s(n * raw.NumDim)
	d.sec = "dict"
	dictLen := int(d.u32())
	if d.err == nil {
		raw.DictNames = make([]string, 0, min(dictLen, 1<<20))
		for i := 0; i < dictLen && d.err == nil; i++ {
			raw.DictNames = append(raw.DictNames, d.str())
		}
	}

	var idx *Index
	if flags&flagIndex != 0 {
		d.sec = "coreness"
		idx = &Index{Coreness: d.i32s(n)}
		if d.u8() != 0 {
			d.sec = "nodetruss"
			idx.NodeTruss = d.i32s(n)
		}
		d.sec = "normmin"
		idx.NormMin = d.f64s(raw.NumDim)
		d.sec = "normmax"
		idx.NormMax = d.f64s(raw.NumDim)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", cserr.ErrSnapshotCorrupt, d.err)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", cserr.ErrSnapshotCorrupt, len(body)-d.off)
	}
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x, stored %08x)", cserr.ErrSnapshotCorrupt, got, want)
	}
	g, err := graph.FromRaw(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", cserr.ErrSnapshotCorrupt, err)
	}
	info := SnapshotInfo{Version: Version, Index: idx != nil, Bytes: int64(len(data))}
	return &Snapshot{Graph: g, Store: g, Index: idx, Info: info}, nil
}

// encoder writes fixed-width little-endian values, latching the first error.
type encoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *encoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

func (e *encoder) u8(v uint8) { e.bytes([]byte{v}) }

func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.bytes(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.bytes(e.buf[:8])
}

// i32s writes a whole int32 slice through one scratch buffer, chunked so
// large arrays do not double resident memory.
func (e *encoder) i32s(xs []int32) {
	const chunk = 16 * 1024
	buf := make([]byte, 0, 4*min(len(xs), chunk))
	for len(xs) > 0 && e.err == nil {
		nn := min(len(xs), chunk)
		buf = buf[:4*nn]
		for i, x := range xs[:nn] {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(x))
		}
		e.bytes(buf)
		xs = xs[nn:]
	}
}

func (e *encoder) f64s(xs []float64) {
	const chunk = 8 * 1024
	buf := make([]byte, 0, 8*min(len(xs), chunk))
	for len(xs) > 0 && e.err == nil {
		nn := min(len(xs), chunk)
		buf = buf[:8*nn]
		for i, x := range xs[:nn] {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
		}
		e.bytes(buf)
		xs = xs[nn:]
	}
}

// i64s is i32s for int64 values.
func (e *encoder) i64s(xs []int64) {
	const chunk = 8 * 1024
	buf := make([]byte, 0, 8*min(len(xs), chunk))
	for len(xs) > 0 && e.err == nil {
		nn := min(len(xs), chunk)
		buf = buf[:8*nn]
		for i, x := range xs[:nn] {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(x))
		}
		e.bytes(buf)
		xs = xs[nn:]
	}
}

// decoder reads fixed-width values from a byte slice with bounds checking,
// latching the first error. sec names the logical section being decoded so
// a truncated snapshot reports where the bytes ran out.
type decoder struct {
	data []byte
	off  int
	err  error
	sec  string
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) || d.off+n < d.off {
		d.fail(fmt.Errorf("section %q truncated at offset %d (need %d bytes)", d.sec, d.off, n))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// count reads a uint64 array length and bounds it by what the remaining
// bytes could possibly hold, so corrupt headers cannot force huge
// allocations.
func (d *decoder) count(what string) int {
	b := d.take(8)
	if b == nil {
		return 0
	}
	v := binary.LittleEndian.Uint64(b)
	if v > uint64(len(d.data)) {
		d.fail(fmt.Errorf("%s count %d exceeds snapshot size", what, v))
		return 0
	}
	return int(v)
}

func (d *decoder) i32s(n int) []int32 {
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (d *decoder) f64s(n int) []float64 {
	b := d.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func (d *decoder) str() string {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
