package store_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cserr"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/query"
	"repro/internal/sea"
	"repro/internal/store"

	"os"
)

// buildEngine generates a dataset analog and an engine with the full index
// built, the state a pack step would snapshot.
func buildEngine(t testing.TB, name string, scale float64) (*dataset.Generated, *engine.Engine) {
	t.Helper()
	d, err := dataset.Homogeneous(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.EagerTruss = true
	eng, err := engine.New(d.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, eng
}

func snapshotBytes(t testing.TB, eng *engine.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTripOutcomes is the acceptance criterion: a graph + index written
// by store.Write and reopened by store.Open answer the same queries with
// byte-identical Outcomes, across methods and structural models.
func TestRoundTripOutcomes(t *testing.T) {
	d, eng := buildEngine(t, "facebook", 0.3)
	snap, err := store.Open(bytes.NewReader(snapshotBytes(t, eng)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Index == nil {
		t.Fatal("snapshot lost its index section")
	}
	cfg := engine.DefaultConfig()
	reopened, err := engine.NewFromSnapshot(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snap.Graph.NumNodes(), d.Graph.NumNodes(); got != want {
		t.Fatalf("nodes: got %d, want %d", got, want)
	}
	if got, want := snap.Graph.NumEdges(), d.Graph.NumEdges(); got != want {
		t.Fatalf("edges: got %d, want %d", got, want)
	}

	q := d.QueryNodes(1, 4, 7)[0]
	reqs := []query.Request{
		{Query: q, Method: query.MethodSEA, K: 4, Seed: 1},
		{Query: q, Method: query.MethodSEA, K: 4, Seed: 1, Model: sea.KTruss},
		{Query: q, Method: query.MethodExact, K: 4, MaxStates: 20000},
		{Query: q, Method: query.MethodStructural, K: 4},
		{Query: q, Method: query.MethodACQ, K: 4},
	}
	for _, req := range reqs {
		want, wantErr := eng.Query(context.Background(), req)
		got, gotErr := reopened.Query(context.Background(), req)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: fresh %v, reopened %v", req.Method, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		wb, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("%s: outcome differs after round trip:\nfresh:    %s\nreopened: %s", req.Method, wb, gb)
		}
	}
}

// TestRoundTripIndex checks the index arrays themselves survive unchanged,
// so the reopened engine's admission decisions are provably the same.
func TestRoundTripIndex(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.25)
	idx := eng.ExportIndex()
	snap, err := store.Open(bytes.NewReader(snapshotBytes(t, eng)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx.Coreness {
		if idx.Coreness[i] != snap.Index.Coreness[i] {
			t.Fatalf("coreness[%d]: got %d, want %d", i, snap.Index.Coreness[i], idx.Coreness[i])
		}
	}
	for i := range idx.NodeTruss {
		if idx.NodeTruss[i] != snap.Index.NodeTruss[i] {
			t.Fatalf("truss[%d]: got %d, want %d", i, snap.Index.NodeTruss[i], idx.NodeTruss[i])
		}
	}
	for i := range idx.NormMin {
		if idx.NormMin[i] != snap.Index.NormMin[i] || idx.NormMax[i] != snap.Index.NormMax[i] {
			t.Fatalf("bounds[%d] changed", i)
		}
	}
}

// TestGraphOnlySnapshot: Write with a nil index yields a snapshot that still
// opens and serves (the engine rebuilds what is missing).
func TestGraphOnlySnapshot(t *testing.T) {
	d, _ := buildEngine(t, "facebook", 0.2)
	var buf bytes.Buffer
	if err := store.Write(&buf, d.Graph, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Index != nil {
		t.Fatal("graph-only snapshot grew an index")
	}
	if _, err := engine.NewFromSnapshot(snap, engine.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.2)
	if !bytes.Equal(snapshotBytes(t, eng), snapshotBytes(t, eng)) {
		t.Fatal("two writes of the same state differ")
	}
}

func TestCorruptionDetection(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.2)
	good := snapshotBytes(t, eng)

	t.Run("bit flip", func(t *testing.T) {
		// Flip one byte in every region of the file; each must be caught.
		for _, at := range []int{20, len(good) / 4, len(good) / 2, len(good) - 5} {
			bad := append([]byte(nil), good...)
			bad[at] ^= 0x40
			if _, err := store.Decode(bad); !errors.Is(err, cserr.ErrSnapshotCorrupt) {
				t.Errorf("flip at %d: got %v, want ErrSnapshotCorrupt", at, err)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 10, len(good) / 2, len(good) - 1} {
			if _, err := store.Decode(good[:n]); !errors.Is(err, cserr.ErrSnapshotCorrupt) {
				t.Errorf("truncate to %d: got %v, want ErrSnapshotCorrupt", n, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 1, 2, 3, 4)
		if _, err := store.Decode(bad); !errors.Is(err, cserr.ErrSnapshotCorrupt) {
			t.Errorf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := store.Decode(bad); !errors.Is(err, cserr.ErrSnapshotVersion) {
			t.Errorf("got %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8] = 99
		if _, err := store.Decode(bad); !errors.Is(err, cserr.ErrSnapshotVersion) {
			t.Errorf("got %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("text file", func(t *testing.T) {
		if _, err := store.Decode([]byte("n 10 2\nv 0 a,b 0.5,0.5\n")); !errors.Is(err, cserr.ErrSnapshotVersion) {
			t.Errorf("got %v, want ErrSnapshotVersion", err)
		}
	})
}

func TestDetectFile(t *testing.T) {
	_, eng := buildEngine(t, "facebook", 0.2)
	snapPath := t.TempDir() + "/g.snap"
	textPath := t.TempDir() + "/g.txt"
	writeFile(t, snapPath, snapshotBytes(t, eng))
	writeFile(t, textPath, []byte("n 1 0\nv 0 - -\n"))

	if info, err := store.DetectFile(snapPath); err != nil || !info.IsSnapshot() {
		t.Fatalf("snapshot not detected: %+v %v", info, err)
	} else if info.Version != store.Version || !info.Index || info.Aligned || info.Compressed {
		t.Fatalf("v1 snapshot misdescribed: %+v", info)
	}
	if info, err := store.DetectFile(textPath); err != nil || info.IsSnapshot() {
		t.Fatalf("text file misdetected: %+v %v", info, err)
	}
	if _, err := store.OpenFile(snapPath); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsShapeMismatch(t *testing.T) {
	d, eng := buildEngine(t, "facebook", 0.2)
	idx := eng.ExportIndex()
	idx.Coreness = idx.Coreness[:len(idx.Coreness)-1]
	var buf bytes.Buffer
	if err := store.Write(&buf, d.Graph, idx); err == nil {
		t.Fatal("mismatched index accepted")
	}
}

// TestFromRawRejectsAsymmetry exercises the structural validation behind
// corruption detection at the graph layer: arcs 0→1 and 2→1 with no
// reverses must be rejected.
func TestFromRawRejectsAsymmetry(t *testing.T) {
	raw := graph.Raw{
		Offsets: []int32{0, 1, 1, 2},
		Adj:     []graph.NodeID{1, 1},
		TextOff: []int32{0, 0, 0, 0},
	}
	if _, err := graph.FromRaw(raw); err == nil {
		t.Fatal("asymmetric adjacency accepted")
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBoot compares the two ways to reach a ready-to-serve engine on a
// profile-scale graph: reopening a packed snapshot vs. parsing the text
// exchange format and rebuilding every index. The acceptance bar for the
// snapshot path is ≥10× faster.
func BenchmarkBoot(b *testing.B) {
	d, eng := buildEngine(b, "twitch", 1.0)
	snap := snapshotBytes(b, eng)
	var text bytes.Buffer
	if err := dataset.WriteGraph(&text, d.Graph); err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.EagerTruss = true // both paths must end with the full admission index

	b.Run("snapshot-open", func(b *testing.B) {
		b.SetBytes(int64(len(snap)))
		for i := 0; i < b.N; i++ {
			s, err := store.Open(bytes.NewReader(snap))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.NewFromSnapshot(s, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text-parse-and-index", func(b *testing.B) {
		b.SetBytes(int64(text.Len()))
		for i := 0; i < b.N; i++ {
			g, err := dataset.LoadGraph(bytes.NewReader(text.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.New(g, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mapped-open", func(b *testing.B) {
		path := writeTemp(b, "g.snap", v2Bytes(b, eng, store.PackOptions{Align: true}))
		b.SetBytes(int64(len(snap)))
		for i := 0; i < b.N; i++ {
			m, err := store.OpenMapped(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.NewFromSnapshot(m.Snapshot(), cfg); err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
}

// BenchmarkBootScaling pins the zero-copy acceptance criterion: across a 4×
// graph-size increase the mapped open stays O(1) (wall-clock ratio ≈ 1)
// while the heap open grows linearly with the file. The engine rows measure
// the same contrast including engine construction on top of the open.
func BenchmarkBootScaling(b *testing.B) {
	for _, scale := range []float64{0.5, 2.0} {
		d, eng := buildEngine(b, "twitch", scale)
		_ = d
		v1Path := writeTemp(b, "v1.snap", snapshotBytes(b, eng))
		v2Path := writeTemp(b, "v2.snap", v2Bytes(b, eng, store.PackOptions{Align: true}))
		cfg := engine.DefaultConfig()
		cfg.EagerTruss = true

		b.Run(fmt.Sprintf("open-heap/scale=%g", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := store.OpenFile(v1Path); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("open-mapped/scale=%g", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := store.OpenMapped(v2Path)
				if err != nil {
					b.Fatal(err)
				}
				m.Close()
			}
		})
		b.Run(fmt.Sprintf("engine-heap/scale=%g", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := store.OpenFile(v1Path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := engine.NewFromSnapshot(s, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("engine-mapped/scale=%g", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := store.OpenMapped(v2Path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := engine.NewFromSnapshot(m.Snapshot(), cfg); err != nil {
					b.Fatal(err)
				}
				m.Close()
			}
		})
	}
}
