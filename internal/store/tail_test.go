package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/mutate"
)

// writeTailFixture appends the given batches to a fresh journal at path.
func writeTailFixture(t *testing.T, path string, batches [][]mutate.Delta) {
	t.Helper()
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, b := range batches {
		if _, err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

// recordEnds returns the byte offset just past each record of a journal
// image, computed from the length fields alone.
func recordEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := journalHeaderLen
	for off < len(data) {
		if len(data)-off < 12 {
			t.Fatalf("trailing garbage at offset %d", off)
		}
		plen := int(binary.LittleEndian.Uint32(data[off+8 : off+12]))
		off += 12 + plen + 4
		ends = append(ends, off)
	}
	return ends
}

// TestTailJournalEveryTruncation cuts a three-batch journal at every byte
// boundary and checks TailJournal returns exactly the records that end
// before the cut — a torn tail (or a partially flushed append seen by a
// concurrent reader) never yields a partial or corrupt batch.
func TestTailJournalEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	want := testBatches()
	writeTailFixture(t, full, want)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	ends := recordEnds(t, data)
	if len(ends) != len(want) {
		t.Fatalf("fixture has %d records, want %d", len(ends), len(want))
	}
	cutPath := filepath.Join(dir, "cut.journal")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := TailJournal(cutPath, 0)
		if cut < journalHeaderLen {
			if err == nil {
				t.Fatalf("cut=%d: torn header tailed without error", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantN := 0
		for _, end := range ends {
			if end <= cut {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: %d batches, want %d", cut, len(got), wantN)
		}
		for i, b := range got {
			if b.Seq != uint64(i+1) || !reflect.DeepEqual(b.Deltas, want[i]) {
				t.Fatalf("cut=%d batch %d: %+v, want seq=%d %+v", cut, i, b, i+1, want[i])
			}
		}
	}
}

// TestTailJournalFromSeq checks the after-cursor filtering: TailJournal
// returns exactly the records past the cursor, and a cursor at or past the
// head returns nothing.
func TestTailJournalFromSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	want := testBatches()
	writeTailFixture(t, path, want)
	for after := uint64(0); after <= uint64(len(want))+1; after++ {
		got, err := TailJournal(path, after)
		if err != nil {
			t.Fatalf("after=%d: %v", after, err)
		}
		wantN := len(want) - int(after)
		if wantN < 0 {
			wantN = 0
		}
		if len(got) != wantN {
			t.Fatalf("after=%d: %d batches, want %d", after, len(got), wantN)
		}
		for i, b := range got {
			seq := after + uint64(i) + 1
			if b.Seq != seq || !reflect.DeepEqual(b.Deltas, want[seq-1]) {
				t.Fatalf("after=%d batch %d: seq=%d, want %d", after, i, b.Seq, seq)
			}
		}
	}
}

// TestTailJournalConcurrentAppend tails a journal while a writer is
// appending to it. Every tail must be a contiguous prefix-consistent slice:
// seq-contiguous from the cursor, and each batch's marker delta must match
// its sequence number. Run with -race: TailJournal reads through its own
// file descriptor, never the writer's buffers.
func TestTailJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const total = 64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= total; i++ {
			// The marker encodes the sequence number, so a reader can
			// verify it never sees record n's payload under record m's
			// header.
			if _, err := j.Append([]mutate.Delta{mutate.AddEdge(graph.NodeID(i), graph.NodeID(i+1))}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var cursor uint64
	for cursor < total {
		got, err := TailJournal(path, cursor)
		if err != nil {
			t.Fatalf("cursor=%d: %v", cursor, err)
		}
		for _, b := range got {
			if b.Seq != cursor+1 {
				t.Fatalf("tail skipped: got seq %d at cursor %d", b.Seq, cursor)
			}
			if len(b.Deltas) != 1 || b.Deltas[0].U != graph.NodeID(b.Seq) || b.Deltas[0].V != graph.NodeID(b.Seq+1) {
				t.Fatalf("batch %d carries wrong payload: %+v", b.Seq, b.Deltas)
			}
			cursor = b.Seq
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	got, err := TailJournal(path, 0)
	if err != nil || len(got) != total {
		t.Fatalf("final tail: %d batches, err=%v; want %d", len(got), err, total)
	}
}

// TestTailJournalMissing checks the error path for a journal that does not
// exist — the follower treats it as "resync", not a crash.
func TestTailJournalMissing(t *testing.T) {
	if _, err := TailJournal(filepath.Join(t.TempDir(), "nope.journal"), 0); err == nil {
		t.Fatal("missing journal tailed without error")
	}
}
