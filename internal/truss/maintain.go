package truss

import (
	"fmt"

	"repro/internal/cohesive"
	"repro/internal/graph"
)

var _ cohesive.Maintainer = (*Sub)(nil)

// Sub maintains a connected k-truss containing a query node under node
// deletions with rollback. It implements cohesive.Maintainer.
//
// The alive set is a set of edges; a node is alive while it has at least one
// alive incident edge. RemoveCascade(v) deletes v's edges, cascades support
// violations, and restricts the alive edges to the query's component.
type Sub struct {
	g  graph.CSR
	ix *EdgeIndex
	k  int
	q  graph.NodeID

	universe  []graph.NodeID // the initial member set; alive nodes ⊆ universe
	edgeAlive []bool
	sup       []int32 // support within alive edges
	nodeDeg   []int32 // number of alive incident edges
	size      int     // number of alive nodes

	// logStack records, per RemoveCascade, the edges removed (in order) and
	// the count of removed nodes. Restore must be called LIFO, which is how
	// every enumeration in this repository backtracks.
	logStack []removalLog

	stack []int32 // cascade stack of edge IDs
	mark  []bool
	nbr   []graph.NodeID // neighbor-decode scratch for non-aliasing backings
}

// removalLog pairs the edges removed by one RemoveCascade with the number of
// nodes that died, for LIFO rollback.
type removalLog struct {
	edges    []int32
	numNodes int
}

// NewSub builds a maintenance structure over members, which must form a
// connected k-truss containing q.
func NewSub(g graph.CSR, q graph.NodeID, k int, members []graph.NodeID) (*Sub, error) {
	ix := NewEdgeIndex(g)
	s := &Sub{
		g:         g,
		ix:        ix,
		k:         k,
		q:         q,
		universe:  append([]graph.NodeID(nil), members...),
		edgeAlive: make([]bool, ix.NumEdges()),
		sup:       make([]int32, ix.NumEdges()),
		nodeDeg:   make([]int32, g.NumNodes()),
		mark:      make([]bool, g.NumNodes()),
	}
	in := make([]bool, g.NumNodes())
	for _, v := range members {
		in[v] = true
	}
	if !in[q] {
		return nil, fmt.Errorf("truss: query node %d not in member set", q)
	}
	// Activate induced edges.
	for _, v := range members {
		for _, u := range g.NeighborsInto(&s.nbr, v) {
			if u > v && in[u] {
				e, _ := ix.EdgeID(v, u)
				s.edgeAlive[e] = true
				s.nodeDeg[v]++
				s.nodeDeg[u]++
			}
		}
	}
	s.size = len(members)
	// Compute supports within alive edges, then peel edges below the
	// threshold: a k-truss is an edge subgraph, so the node-induced graph of
	// members may contain extra low-support edges that must go.
	for e := 0; e < ix.NumEdges(); e++ {
		if !s.edgeAlive[e] {
			continue
		}
		cnt := int32(0)
		s.forAliveTriangles(int32(e), func(e1, e2 int32) { cnt++ })
		s.sup[e] = cnt
		if int(cnt) < k-2 {
			s.stack = append(s.stack, int32(e))
		}
	}
	var nodesGone []graph.NodeID
	var elog []int32
	for len(s.stack) > 0 {
		e := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.killEdge(e, &nodesGone, &elog)
	}
	if s.nodeDeg[q] == 0 {
		return nil, fmt.Errorf("truss: query node %d has no k-truss edge within the member set", q)
	}
	// Restrict to q's component over alive edges.
	s.restrictToQueryComponent(&nodesGone, &elog)
	return s, nil
}

// restrictToQueryComponent kills every alive edge outside q's component.
func (s *Sub) restrictToQueryComponent(nodes *[]graph.NodeID, elog *[]int32) {
	comp := []graph.NodeID{s.q}
	s.mark[s.q] = true
	compSize := 1
	for i := 0; i < len(comp); i++ {
		x := comp[i]
		baseX := int(s.g.ListOffset(x))
		for j, u := range s.g.NeighborsInto(&s.nbr, x) {
			e := s.ix.eid[baseX+j]
			if s.edgeAlive[e] && !s.mark[u] {
				s.mark[u] = true
				comp = append(comp, u)
				compSize++
			}
		}
	}
	if compSize != s.size {
		for e := range s.edgeAlive {
			if s.edgeAlive[e] && !s.mark[s.ix.U[e]] {
				s.killEdgeNoCascade(int32(e), nodes, elog)
			}
		}
	}
	for _, u := range comp {
		s.mark[u] = false
	}
}

// forAliveTriangles calls fn for every triangle (e, e1, e2) with all three
// edges alive.
func (s *Sub) forAliveTriangles(e int32, fn func(e1, e2 int32)) {
	u, v := s.ix.U[e], s.ix.V[e]
	g := s.g
	nu := g.NeighborsInto(&s.ix.nbu, u)
	nv := g.NeighborsInto(&s.ix.nbv, v)
	baseU, baseV := int(g.ListOffset(u)), int(g.ListOffset(v))
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		switch {
		case nu[i] == nv[j]:
			e1 := s.ix.eid[baseU+i]
			e2 := s.ix.eid[baseV+j]
			if s.edgeAlive[e1] && s.edgeAlive[e2] {
				fn(e1, e2)
			}
			i++
			j++
		case nu[i] < nv[j]:
			i++
		default:
			j++
		}
	}
}

// Query returns the query node.
func (s *Sub) Query() graph.NodeID { return s.q }

// Size returns the number of alive nodes.
func (s *Sub) Size() int { return s.size }

// Alive reports whether v has at least one alive incident edge.
func (s *Sub) Alive(v graph.NodeID) bool { return s.nodeDeg[v] > 0 }

// Members appends alive nodes to dst and returns it. O(initial members),
// not O(graph).
func (s *Sub) Members(dst []graph.NodeID) []graph.NodeID {
	for _, v := range s.universe {
		if s.nodeDeg[v] > 0 {
			dst = append(dst, v)
		}
	}
	return dst
}

// killEdge deactivates edge e, updates node degrees and neighbor supports,
// cascading edges whose support drops below k-2. Removed nodes are appended
// to nodes, removed edges to the edge log.
func (s *Sub) killEdge(e int32, nodes *[]graph.NodeID, elog *[]int32) {
	if !s.edgeAlive[e] {
		return
	}
	s.edgeAlive[e] = false
	*elog = append(*elog, e)
	for _, end := range [2]graph.NodeID{s.ix.U[e], s.ix.V[e]} {
		s.nodeDeg[end]--
		if s.nodeDeg[end] == 0 {
			s.size--
			*nodes = append(*nodes, end)
		}
	}
	s.forAliveTriangles(e, func(e1, e2 int32) {
		s.sup[e1]--
		if int(s.sup[e1]) < s.k-2 {
			s.stack = append(s.stack, e1)
		}
		s.sup[e2]--
		if int(s.sup[e2]) < s.k-2 {
			s.stack = append(s.stack, e2)
		}
	})
}

// RemoveCascade deletes node v (all its alive edges), cascades support
// violations, and restricts alive edges to the query's component.
func (s *Sub) RemoveCascade(v graph.NodeID) (removed []graph.NodeID, qAlive bool) {
	if s.nodeDeg[v] == 0 {
		// No-op removal still pushes a log entry so Restore stays aligned.
		s.logStack = append(s.logStack, removalLog{})
		return nil, s.nodeDeg[s.q] > 0
	}
	var elog []int32
	s.stack = s.stack[:0]
	baseV := int(s.g.ListOffset(v))
	for i, d := 0, s.g.Degree(v); i < d; i++ {
		e := s.ix.eid[baseV+i]
		s.killEdge(e, &removed, &elog)
	}
	for len(s.stack) > 0 {
		e := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.killEdge(e, &removed, &elog)
	}
	if s.nodeDeg[s.q] == 0 {
		s.logStack = append(s.logStack, removalLog{elog, len(removed)})
		return removed, false
	}
	s.restrictToQueryComponent(&removed, &elog)
	s.logStack = append(s.logStack, removalLog{elog, len(removed)})
	return removed, true
}

// killEdgeNoCascade removes an edge known to be outside the query component.
func (s *Sub) killEdgeNoCascade(e int32, nodes *[]graph.NodeID, elog *[]int32) {
	s.edgeAlive[e] = false
	*elog = append(*elog, e)
	s.forAliveTriangles(e, func(e1, e2 int32) {
		s.sup[e1]--
		s.sup[e2]--
	})
	for _, end := range [2]graph.NodeID{s.ix.U[e], s.ix.V[e]} {
		s.nodeDeg[end]--
		if s.nodeDeg[end] == 0 {
			s.size--
			*nodes = append(*nodes, end)
		}
	}
}

// Restore re-inserts the edges and nodes removed by the most recent
// RemoveCascade. Restores must proceed LIFO; removed must be the slice
// returned by that call.
func (s *Sub) Restore(removed []graph.NodeID) {
	if len(s.logStack) == 0 {
		panic("truss: Restore with empty log stack")
	}
	top := s.logStack[len(s.logStack)-1]
	s.logStack = s.logStack[:len(s.logStack)-1]
	if top.numNodes != len(removed) {
		panic("truss: Restore out of LIFO order")
	}
	elog := top.edges
	for i := len(elog) - 1; i >= 0; i-- {
		e := elog[i]
		s.edgeAlive[e] = true
		cnt := int32(0)
		s.forAliveTriangles(e, func(e1, e2 int32) {
			cnt++
			s.sup[e1]++
			s.sup[e2]++
		})
		s.sup[e] = cnt
		for _, end := range [2]graph.NodeID{s.ix.U[e], s.ix.V[e]} {
			if s.nodeDeg[end] == 0 {
				s.size++
			}
			s.nodeDeg[end]++
		}
	}
}
