// Package truss implements k-truss decomposition, maximal connected k-truss
// extraction, and an incremental connected-k-truss maintenance structure with
// rollback (the §VI-C extension of the paper).
//
// A k-truss is a subgraph in which every edge participates in at least k−2
// triangles inside the subgraph. Every node of a k-truss has degree ≥ k−1.
package truss

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/ws"
)

// EdgeIndex assigns a dense ID to every undirected edge of a graph and maps
// adjacency positions to edge IDs so supports can be stored per edge.
type EdgeIndex struct {
	g graph.CSR
	// eid[p] is the edge ID of the directed adjacency entry at CSR position p.
	eid []int32
	// U, V are the endpoints of each edge, U[i] < V[i].
	U, V []graph.NodeID
	// nbu, nbv are neighbor-decode scratch for backings that cannot alias.
	// EdgeIndex methods are single-goroutine; build one index per worker.
	nbu, nbv []graph.NodeID
}

// NewEdgeIndex builds the edge index for g.
func NewEdgeIndex(g graph.CSR) *EdgeIndex {
	n := g.NumNodes()
	idx := &EdgeIndex{g: g, eid: make([]int32, 2*g.NumEdges())}
	pos := 0
	var next int32
	// First pass: assign IDs to (u,v) with u < v in CSR order.
	starts := make([]int, n)
	for u := 0; u < n; u++ {
		starts[u] = pos
		for _, v := range g.NeighborsInto(&idx.nbu, graph.NodeID(u)) {
			if graph.NodeID(u) < v {
				idx.eid[pos] = next
				idx.U = append(idx.U, graph.NodeID(u))
				idx.V = append(idx.V, v)
				next++
			}
			pos++
		}
	}
	// Second pass: fill in the reverse directions by lookup.
	pos = 0
	for u := 0; u < n; u++ {
		for _, v := range g.NeighborsInto(&idx.nbu, graph.NodeID(u)) {
			if graph.NodeID(u) > v {
				idx.eid[pos] = idx.eid[starts[v]+idx.findPos(v, graph.NodeID(u))]
			}
			pos++
		}
	}
	return idx
}

// findPos returns the index of u within v's sorted neighbor list.
func (ix *EdgeIndex) findPos(v, u graph.NodeID) int {
	ns := ix.g.NeighborsInto(&ix.nbv, v)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= u })
	return i
}

// NumEdges returns the number of undirected edges.
func (ix *EdgeIndex) NumEdges() int { return len(ix.U) }

// EdgeID returns the edge ID of (u,v) and whether the edge exists.
func (ix *EdgeIndex) EdgeID(u, v graph.NodeID) (int32, bool) {
	ns := ix.g.NeighborsInto(&ix.nbu, u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	if i >= len(ns) || ns[i] != v {
		return 0, false
	}
	return ix.eid[int(ix.g.ListOffset(u))+i], true
}

// Supports counts, for every edge, the number of triangles it closes.
func (ix *EdgeIndex) Supports() []int32 {
	sup := make([]int32, ix.NumEdges())
	g := ix.g
	for e := range ix.U {
		u, v := ix.U[e], ix.V[e]
		nu := g.NeighborsInto(&ix.nbu, u)
		nv := g.NeighborsInto(&ix.nbv, v)
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] == nv[j]:
				sup[e]++
				i++
				j++
			case nu[i] < nv[j]:
				i++
			default:
				j++
			}
		}
	}
	return sup
}

// Decompose computes the trussness of every edge by support peeling: the
// trussness of e is the largest k such that e belongs to a k-truss.
func Decompose(g graph.CSR) (*EdgeIndex, []int32) {
	ix := NewEdgeIndex(g)
	m := ix.NumEdges()
	sup := ix.Supports()
	truss := make([]int32, m)

	// Bucket queue on support.
	maxSup := int32(0)
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}
	buckets := make([][]int32, maxSup+1)
	for e := 0; e < m; e++ {
		buckets[sup[e]] = append(buckets[sup[e]], int32(e))
	}
	removed := make([]bool, m)
	cur := append([]int32(nil), sup...)
	k := int32(0)
	processed := 0
	for processed < m {
		// Find the lowest non-empty bucket at or below current supports.
		var e int32 = -1
		for s := int32(0); s <= maxSup; s++ {
			for len(buckets[s]) > 0 {
				cand := buckets[s][len(buckets[s])-1]
				buckets[s] = buckets[s][:len(buckets[s])-1]
				if removed[cand] || cur[cand] != s {
					continue
				}
				e = cand
				break
			}
			if e >= 0 {
				break
			}
		}
		if e < 0 {
			break
		}
		if cur[e] > k {
			k = cur[e]
		}
		truss[e] = k + 2
		removed[e] = true
		processed++
		u, v := ix.U[e], ix.V[e]
		// Decrement supports of edges forming triangles with e.
		forEachTriangle(ix, removed, u, v, func(e1, e2 int32) {
			for _, t := range [2]int32{e1, e2} {
				if cur[t] > k {
					cur[t]--
					buckets[cur[t]] = append(buckets[cur[t]], t)
				}
			}
		})
	}
	return ix, truss
}

// forEachTriangle calls fn(e1,e2) for every common neighbor w of u and v such
// that edges e1=(u,w) and e2=(v,w) are not removed.
func forEachTriangle(ix *EdgeIndex, removed []bool, u, v graph.NodeID, fn func(e1, e2 int32)) {
	g := ix.g
	nu := g.NeighborsInto(&ix.nbu, u)
	nv := g.NeighborsInto(&ix.nbv, v)
	baseU, baseV := int(g.ListOffset(u)), int(g.ListOffset(v))
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		switch {
		case nu[i] == nv[j]:
			e1 := ix.eid[baseU+i]
			e2 := ix.eid[baseV+j]
			if !removed[e1] && !removed[e2] {
				fn(e1, e2)
			}
			i++
			j++
		case nu[i] < nv[j]:
			i++
		default:
			j++
		}
	}
}

// MaximalConnectedKTruss returns the node set of the maximal connected
// k-truss containing q, or nil if none exists. Connectivity is over edges of
// trussness ≥ k.
func MaximalConnectedKTruss(g graph.CSR, q graph.NodeID, k int) []graph.NodeID {
	w := ws.Get()
	defer w.Release()
	return MaximalConnectedKTrussInto(nil, g, q, k, w)
}

// MaximalConnectedKTrussInto is MaximalConnectedKTruss appending to dst,
// with the traversal's visited set drawn from w. The edge index and support
// peeling still allocate (trussness is an index-building computation); the
// workspace removes the per-call visited array. Returns nil when q has no
// qualifying edge.
func MaximalConnectedKTrussInto(dst []graph.NodeID, g graph.CSR, q graph.NodeID, k int, w *ws.Workspace) []graph.NodeID {
	ix, truss := Decompose(g)
	inTruss := func(u, v graph.NodeID) bool {
		e, ok := ix.EdgeID(u, v)
		return ok && int(truss[e]) >= k
	}
	// q qualifies only if it has at least one qualifying edge.
	hasEdge := false
	for _, u := range g.NeighborsInto(&w.NbrA, q) {
		if inTruss(q, u) {
			hasEdge = true
			break
		}
	}
	if !hasEdge {
		return nil
	}
	// BFS from q over qualifying edges.
	w.Visited.Reset(g.NumNodes())
	w.Visited.Add(q)
	start := len(dst)
	dst = append(dst, q)
	for i := start; i < len(dst); i++ {
		v := dst[i]
		for _, u := range g.NeighborsInto(&w.NbrA, v) {
			if !w.Visited.Has(u) && inTruss(v, u) {
				w.Visited.Add(u)
				dst = append(dst, u)
			}
		}
	}
	return dst
}

// InKTrussSet reports whether members is a valid connected k-truss
// community node set: peeling the induced edges to the maximal k-truss
// leaves every member incident to a surviving edge, and the surviving edges
// connect all members. A k-truss is an edge subgraph, so the node-induced
// graph may legitimately contain extra low-support edges; they are peeled,
// not rejected. Used by tests and validators.
func InKTrussSet(g graph.Adjacency, members []graph.NodeID, k int) bool {
	if len(members) == 0 {
		return false
	}
	if len(members) == 1 {
		return k <= 1
	}
	wsp := ws.Get()
	defer wsp.Release()
	in := &wsp.Member
	in.Reset(g.NumNodes())
	for _, v := range members {
		in.Add(v)
	}
	alive := map[[2]graph.NodeID]bool{}
	for _, v := range members {
		for _, u := range g.NeighborsInto(&wsp.NbrA, v) {
			if u > v && in.Has(u) {
				alive[[2]graph.NodeID{v, u}] = true
			}
		}
	}
	has := func(a, b graph.NodeID) bool {
		if a > b {
			a, b = b, a
		}
		return alive[[2]graph.NodeID{a, b}]
	}
	for changed := true; changed; {
		changed = false
		for e := range alive {
			u, v := e[0], e[1]
			sup := 0
			for _, w := range g.NeighborsInto(&wsp.NbrA, u) {
				if in.Has(w) && w != v && has(u, w) && has(v, w) {
					sup++
				}
			}
			if sup < k-2 {
				delete(alive, e)
				changed = true
			}
		}
	}
	// Every member must keep an edge, and the surviving edges must connect
	// all members.
	deg := map[graph.NodeID]int{}
	adj := map[graph.NodeID][]graph.NodeID{}
	for e := range alive {
		deg[e[0]]++
		deg[e[1]]++
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, v := range members {
		if deg[v] == 0 {
			return false
		}
	}
	seen := map[graph.NodeID]bool{members[0]: true}
	stack := []graph.NodeID{members[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(members)
}
