package truss

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// clique builds K_n.
func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.MustBuild()
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	g := clique(5)
	ix := NewEdgeIndex(g)
	if ix.NumEdges() != 10 {
		t.Fatalf("NumEdges = %d, want 10", ix.NumEdges())
	}
	seen := map[int32]bool{}
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			e1, ok1 := ix.EdgeID(graph.NodeID(u), graph.NodeID(v))
			e2, ok2 := ix.EdgeID(graph.NodeID(v), graph.NodeID(u))
			if !ok1 || !ok2 || e1 != e2 {
				t.Fatalf("EdgeID(%d,%d) inconsistent: %d/%v vs %d/%v", u, v, e1, ok1, e2, ok2)
			}
			seen[e1] = true
			if ix.U[e1] != graph.NodeID(u) || ix.V[e1] != graph.NodeID(v) {
				t.Errorf("endpoints of %d = (%d,%d), want (%d,%d)", e1, ix.U[e1], ix.V[e1], u, v)
			}
		}
	}
	if len(seen) != 10 {
		t.Errorf("distinct edge IDs = %d, want 10", len(seen))
	}
	if _, ok := ix.EdgeID(0, 0); ok {
		t.Error("EdgeID(0,0) found nonexistent edge")
	}
}

func TestSupportsClique(t *testing.T) {
	g := clique(5)
	ix := NewEdgeIndex(g)
	for e, s := range ix.Supports() {
		if s != 3 { // every edge of K5 closes 3 triangles
			t.Errorf("support[%d] = %d, want 3", e, s)
		}
	}
}

func TestDecomposeClique(t *testing.T) {
	// K_n is an n-truss; every edge has trussness n.
	for n := 3; n <= 6; n++ {
		g := clique(n)
		_, truss := Decompose(g)
		for e, k := range truss {
			if int(k) != n {
				t.Errorf("K%d: trussness[%d] = %d, want %d", n, e, k, n)
			}
		}
	}
}

func TestDecomposeTwoTrianglesBridge(t *testing.T) {
	// Two triangles joined by a bridge: triangle edges have trussness 3,
	// the bridge has trussness 2.
	b := graph.NewBuilder(6, 0)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	g := b.MustBuild()
	ix, truss := Decompose(g)
	for e := range truss {
		u, v := ix.U[e], ix.V[e]
		want := int32(3)
		if u == 2 && v == 3 {
			want = 2
		}
		if truss[e] != want {
			t.Errorf("trussness(%d,%d) = %d, want %d", u, v, truss[e], want)
		}
	}
}

func TestMaximalConnectedKTruss(t *testing.T) {
	// K4 attached to a path: the 4-truss around q=0 is exactly the K4.
	b := graph.NewBuilder(7, 0)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.MustBuild()
	members := MaximalConnectedKTruss(g, 0, 4)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if len(members) != 4 {
		t.Fatalf("members = %v, want the K4", members)
	}
	for i, v := range members {
		if v != graph.NodeID(i) {
			t.Fatalf("members = %v, want {0,1,2,3}", members)
		}
	}
	if got := MaximalConnectedKTruss(g, 0, 5); got != nil {
		t.Errorf("5-truss = %v, want nil", got)
	}
	if got := MaximalConnectedKTruss(g, 5, 4); got != nil {
		t.Errorf("4-truss of path node = %v, want nil", got)
	}
}

func TestSubRemoveRestore(t *testing.T) {
	// K5: removing one node leaves K4, still a 4-truss.
	g := clique(5)
	members := MaximalConnectedKTruss(g, 0, 4)
	sub, err := NewSub(g, 0, 4, members)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 5 {
		t.Fatalf("size = %d, want 5", sub.Size())
	}
	removed, qAlive := sub.RemoveCascade(4)
	if !qAlive {
		t.Fatal("q must survive K5→K4")
	}
	mem := sub.Members(nil)
	if len(mem) != 4 {
		t.Fatalf("members after removal = %v", mem)
	}
	if !InKTrussSet(g, mem, 4) {
		t.Errorf("members %v are not a 4-truss", mem)
	}
	sub.Restore(removed)
	if sub.Size() != 5 {
		t.Errorf("size after restore = %d, want 5", sub.Size())
	}
	// Supports must be fully restored: remove again and get the same result.
	removed2, _ := sub.RemoveCascade(4)
	if len(removed2) != len(removed) {
		t.Errorf("second removal differs: %v vs %v", removed2, removed)
	}
	sub.Restore(removed2)
}

func TestSubCollapse(t *testing.T) {
	// K4 with k=4: removing any node destroys all triangles.
	g := clique(4)
	members := MaximalConnectedKTruss(g, 0, 4)
	sub, err := NewSub(g, 0, 4, members)
	if err != nil {
		t.Fatal(err)
	}
	removed, qAlive := sub.RemoveCascade(1)
	if qAlive {
		t.Error("q should die when K4 collapses under k=4")
	}
	sub.Restore(removed)
	if sub.Size() != 4 {
		t.Errorf("size after restore = %d, want 4", sub.Size())
	}
}

func TestPropertyTrussInvariant(t *testing.T) {
	// For random graphs, the maximal connected k-truss must satisfy the
	// k-truss predicate, and Sub removals must preserve it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(18)
		b := graph.NewBuilder(n, 0)
		m := n * (2 + rng.Intn(3))
		for i := 0; i < m; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		k := 3 + rng.Intn(2)
		q := graph.NodeID(rng.Intn(n))
		members := MaximalConnectedKTruss(g, q, k)
		if members == nil {
			return true
		}
		if !InKTrussSet(g, members, k) {
			return false
		}
		sub, err := NewSub(g, q, k, members)
		if err != nil {
			return false
		}
		for trial := 0; trial < 6; trial++ {
			mem := sub.Members(nil)
			v := mem[rng.Intn(len(mem))]
			if v == q {
				continue
			}
			size := sub.Size()
			removed, qAlive := sub.RemoveCascade(v)
			if qAlive && !InKTrussSet(g, sub.Members(nil), k) {
				return false
			}
			sub.Restore(removed)
			if sub.Size() != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeAgainstPredicate(t *testing.T) {
	// For every edge, trussness k means the edge is in the k-truss computed
	// by naive peeling at level k but not at level k+1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		b := graph.NewBuilder(n, 0)
		m := n * (1 + rng.Intn(3))
		for i := 0; i < m; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g := b.MustBuild()
		ix, truss := Decompose(g)
		for k := 3; k <= 6; k++ {
			want := naiveKTrussEdges(g, k)
			for e := range truss {
				inTruss := int(truss[e]) >= k
				key := [2]graph.NodeID{ix.U[e], ix.V[e]}
				if want[key] != inTruss {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// naiveKTrussEdges peels edges with support < k−2 until fixpoint and returns
// the surviving edge set.
func naiveKTrussEdges(g *graph.Graph, k int) map[[2]graph.NodeID]bool {
	alive := map[[2]graph.NodeID]bool{}
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if u > graph.NodeID(v) {
				alive[[2]graph.NodeID{graph.NodeID(v), u}] = true
			}
		}
	}
	has := func(a, b graph.NodeID) bool {
		if a > b {
			a, b = b, a
		}
		return alive[[2]graph.NodeID{a, b}]
	}
	for {
		changed := false
		for e, ok := range alive {
			if !ok {
				continue
			}
			u, v := e[0], e[1]
			sup := 0
			for _, w := range g.Neighbors(u) {
				if w != v && has(u, w) && has(v, w) && g.HasEdge(v, w) {
					sup++
				}
			}
			if sup < k-2 {
				delete(alive, e)
				changed = true
			}
		}
		if !changed {
			return alive
		}
	}
}
