// Package ws provides the reusable per-search workspace substrate behind
// the repository's allocation-free hot paths. The paper's headline claim is
// scalability, and at serving scale the cost that dominates the SEA pipeline
// is not algorithmic — it is memory traffic: fresh visited sets, frontier
// queues, sampling-key arrays and induced-subgraph buffers allocated on
// every call, round after round, query after query.
//
// A Workspace bundles every scratch structure the hot loops need — epoch-
// stamped visited/membership sets (graph.NodeSet: reset by epoch bump, not
// reallocation), a best-first frontier heap, weighted-sampling key arrays,
// int32 quadruples for the bin-sort core decomposition, and a
// graph.SubScratch that writes induced CSR subgraphs into preallocated
// arrays. Workspaces are recycled through a sync.Pool: a search borrows one
// with Get, threads it through sampling → extraction → estimation, and
// returns it with Release, so steady-state query traffic runs with ~zero
// allocations in the substrate operations (see BenchmarkSubstrate* at the
// repository root).
//
// The package also hosts ForRange, the bounded parallel-for used by the
// embarrassingly-parallel inner stages (BLB bag resamples, the peel loop's
// most-dissimilar scan, Metric.QueryDist over node ranges). Workers are
// capped by GOMAXPROCS and every parallel stage is written so its result is
// byte-identical to the serial order — determinism under parallelism is
// part of the paper-reproduction contract.
package ws

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// NodeDist pairs a node with a float key: a frontier entry ordered by
// composite distance, or a weighted-sampling key.
type NodeDist struct {
	V graph.NodeID
	D float64
}

// Workspace is the reusable scratch state of one search. Borrow with Get,
// return with Release; a Workspace is not safe for concurrent use. Fields
// are exported for the hot loops that thread it; any function may clobber
// any buffer, so callers must not hold a buffer across a call that also
// takes the workspace (output that outlives the call belongs in
// caller-owned slices).
type Workspace struct {
	// Visited and Member are the two epoch-stamped sets most operations
	// need (a traversal's seen set; a membership test set).
	Visited graph.NodeSet
	Member  graph.NodeSet

	// Heap is the best-first frontier of BuildGq; Keys the exponential-keys
	// array of WeightedSample.
	Heap []NodeDist
	Keys []NodeDist

	// Nodes and Floats are general node/float scratch (enlarge's rest pool,
	// component output, ...).
	Nodes  []graph.NodeID
	Floats []float64

	// DegS, BinS, VertS, PosS back the O(m) bin-sort core decomposition.
	DegS, BinS, VertS, PosS []int32

	// Gq, Sample, Members, Best and Probs, Vals are the SEA round loop's
	// population/sample/candidate buffers, pooled here so steady-state
	// query traffic reuses them across whole searches.
	Gq, Sample, Members, Best []graph.NodeID
	Probs, Vals               []float64

	// NbrA and NbrB are neighbor-decode scratch for graph.Adjacency
	// backings that cannot return aliased neighbor lists (compressed
	// adjacency, overlays). Heap CSR backings never touch them. Two buffers
	// because triangle-style loops hold two lists at once.
	NbrA, NbrB []graph.NodeID

	// Sub builds induced CSR subgraphs into preallocated arrays.
	Sub graph.SubScratch
}

var pool = sync.Pool{New: func() any { return new(Workspace) }}

// Get borrows a Workspace from the pool.
func Get() *Workspace { return pool.Get().(*Workspace) }

// Release returns w to the pool. The caller must not use w afterwards.
func (w *Workspace) Release() { pool.Put(w) }

// I32 returns buf resized to n, reusing its backing array when it is large
// enough. Contents are not cleared.
func I32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// MaxWorkers returns the bound on workers for parallel stages: GOMAXPROCS.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// ForRange splits [0, n) into at most MaxWorkers contiguous chunks and runs
// fn(lo, hi) on each concurrently. It returns ctx.Err() without launching
// when the context is already cancelled, and otherwise waits for every
// launched chunk (fn must itself poll ctx if chunks are long-running).
// When n < minParallel — or only one worker is available — fn runs inline
// as fn(0, n), so small inputs pay no goroutine overhead. fn must be safe
// for concurrent invocation on disjoint ranges; writes to disjoint indices
// keep results identical to the serial order.
func ForRange(ctx context.Context, n, minParallel int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallel {
		fn(0, n)
		return nil
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}
