package ws

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForRangeCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 4096} {
		var hits [4096]int32
		err := ForRange(context.Background(), n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if hits[i] != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, hits[i])
			}
		}
	}
}

func TestForRangeInlineBelowThreshold(t *testing.T) {
	calls := 0
	err := ForRange(context.Background(), 100, 1000, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("inline call got [%d,%d), want [0,100)", lo, hi)
		}
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want nil / 1", err, calls)
	}
}

func TestForRangeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForRange(ctx, 1000, 1, func(lo, hi int) { called = true })
	if err == nil {
		t.Fatal("want context error")
	}
	if called {
		t.Fatal("fn ran under a cancelled context")
	}
}

func TestWorkspacePoolRoundTrip(t *testing.T) {
	w := Get()
	w.Visited.Reset(64)
	w.Visited.Add(3)
	w.Nodes = append(w.Nodes[:0], 1, 2, 3)
	w.Release()
	// A released workspace must be reusable whatever its prior state.
	w2 := Get()
	defer w2.Release()
	w2.Visited.Reset(8)
	if w2.Visited.Has(3) {
		t.Fatal("Reset did not clear membership across pool reuse")
	}
}

func TestI32(t *testing.T) {
	buf := I32(nil, 10)
	if len(buf) != 10 {
		t.Fatalf("len=%d, want 10", len(buf))
	}
	buf[5] = 7
	same := I32(buf, 4)
	if len(same) != 4 || &same[0] != &buf[0] {
		t.Fatal("I32 should reuse a sufficient backing array")
	}
	grown := I32(buf, 1000)
	if len(grown) != 1000 {
		t.Fatalf("len=%d, want 1000", len(grown))
	}
}
