#!/bin/sh
# End-to-end fault-tolerance smoke: boot a journaled primary, two followers,
# and a searouter whose read path has deterministic fault injection armed
# (~20% of upstream shard reads die at the transport). Drive the router with
# seaload while killing -9 the primary mid-run, and assert reads keep
# flowing within an error budget: the router's retries and circuit breakers
# must route around both the injected faults and the dead member. Then boot
# an overloaded node (-max-inflight 1 with an injected slow search holding
# the slot) and assert it sheds with 429 + Retry-After, and finish by
# re-querying through the router twice to check answers stayed consistent
# after the chaos.
#
# Expects: $SMOKE_DIR containing datagen/seacli/seaserve/searouter/seaload
# binaries plus fb.snap (packed snapshot). Base port: $SMOKE_PORT (default
# 8985); uses SMOKE_PORT..SMOKE_PORT+4.
set -eu

DIR=${SMOKE_DIR:?set SMOKE_DIR to the directory with binaries and fb.snap}
P=${SMOKE_PORT:-8985}
F1=$((P + 1))
F2=$((P + 2))
RP=$((P + 3))
OV=$((P + 4))
PRIMARY="http://127.0.0.1:$P"
FOLLOWER1="http://127.0.0.1:$F1"
FOLLOWER2="http://127.0.0.1:$F2"
ROUTER="http://127.0.0.1:$RP"
OVERLOAD="http://127.0.0.1:$OV"

wait_up() {
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "chaos-smoke: $1 did not come up" >&2
  return 1
}

PRIM_PID='' FOL1_PID='' FOL2_PID='' ROUTER_PID='' OVER_PID=''
cleanup() {
  for pid in $PRIM_PID $FOL1_PID $FOL2_PID $ROUTER_PID $OVER_PID; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# The primary's own fault sites are armed: the first replication bootstrap
# stream severs mid-body (the follower must retry and recover), and the
# second journal append's fsync dies (the dataset must fail closed for
# writes until compaction heals it).
"$DIR/seaserve" -snapshot "$DIR/fb.snap" -journal "$DIR/fb.journal" \
  -name fb -addr "127.0.0.1:$P" \
  -faults 'replicate.stream=count:1,partial,err:reset;journal.fsync=after:1,count:1,err:eio' \
  -faults-seed 5 &
PRIM_PID=$!
wait_up "$PRIMARY"

"$DIR/seaserve" -follow "$PRIMARY" -replica-dir "$DIR/f1" \
  -poll-every 200ms -addr "127.0.0.1:$F1" >"$DIR/f1.log" 2>&1 &
FOL1_PID=$!
"$DIR/seaserve" -follow "$PRIMARY" -replica-dir "$DIR/f2" \
  -poll-every 200ms -addr "127.0.0.1:$F2" >"$DIR/f2.log" 2>&1 &
FOL2_PID=$!
wait_up "$FOLLOWER1"
wait_up "$FOLLOWER2"
# Both followers are up, so the severed first bootstrap stream (count:1 on
# the primary) was survived by a retry — prove it actually fired.
grep -h 'bootstrap from .* failed' "$DIR/f1.log" "$DIR/f2.log" >/dev/null || {
  echo "chaos-smoke: severed bootstrap stream never fired or was not logged" >&2
  exit 1
}
echo "chaos-smoke: a follower retried through the severed bootstrap stream"

# The router's own read client has fault injection armed: each upstream
# shard read has a 20% chance of dying with a connection reset, so every
# successful client response under load proves the retry path works.
"$DIR/searouter" -addr "127.0.0.1:$RP" \
  -members "$PRIMARY,$FOLLOWER1,$FOLLOWER2" -rf 3 \
  -probe-every 300ms -fail-after 3 -shard-timeout 5s \
  -retries 2 -retry-base 20ms -breaker-threshold 5 -breaker-cooldown 2s \
  -faults 'router.shard=prob:0.2,err:reset' -faults-seed 7 &
ROUTER_PID=$!
wait_up "$ROUTER"

# Seed one write so the followers have a journal to tail and are provably
# in sync before the chaos starts.
X=$(curl -sf "$PRIMARY/healthz" | grep -o '"nodes":[0-9]*' | grep -o '[0-9]*')
curl -sf -X POST "$ROUTER/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_node\",\"text\":[\"chaos\"]},{\"op\":\"add_edge\",\"u\":$X,\"v\":0}]}" \
  >"$DIR/mutate.json"
grep -q '"version":1' "$DIR/mutate.json"
for f in "$FOLLOWER1" "$FOLLOWER2"; do
  ok=0
  for _ in $(seq 1 50); do
    if curl -sf "$f/healthz" | grep -q '"version":1'; then ok=1; break; fi
    sleep 0.2
  done
  [ "$ok" = 1 ] || { echo "chaos-smoke: follower $f never caught up" >&2; exit 1; }
done

# The armed fsync fault fires on this write: it must fail, quarantine the
# journal (broken in /admin/replication), keep serving reads, and heal by
# compaction — the PR 5 durability invariant under an injected fault.
code=$(curl -s -o "$DIR/fsync-fault.json" -w '%{http_code}' -X POST "$ROUTER/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_edge\",\"u\":$X,\"v\":2}]}")
[ "$code" -ge 500 ] || {
  echo "chaos-smoke: fsync-faulted mutate answered $code, want 5xx" >&2
  cat "$DIR/fsync-fault.json" >&2
  exit 1
}
curl -sf "$PRIMARY/admin/replication" | grep -q 'durability hole' || {
  echo "chaos-smoke: broken journal not surfaced in /admin/replication" >&2
  exit 1
}
curl -sf "$PRIMARY/search?graph=fb&q=0&k=2" >/dev/null || {
  echo "chaos-smoke: reads stopped on the quarantined dataset" >&2
  exit 1
}
curl -sf -X POST "$PRIMARY/admin/compact" -d '{"graph":"fb"}' >/dev/null
curl -sf -X POST "$ROUTER/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_edge\",\"u\":$X,\"v\":3}]}" \
  >"$DIR/healed-mutate.json"
grep -q '"version":' "$DIR/healed-mutate.json" || {
  echo "chaos-smoke: mutate after compaction failed" >&2
  cat "$DIR/healed-mutate.json" >&2
  exit 1
}
echo "chaos-smoke: injected fsync fault failed closed and compaction healed it"

# Compaction fenced the followers' cursors (410 → re-bootstrap): wait for
# both replication cursors to converge on the primary's version, with no
# lingering sync error, before the load starts.
RPV=$(curl -sf "$PRIMARY/admin/replication" | grep -o '"version":[0-9]*' | head -1 | grep -o '[0-9]*')
for f in "$FOLLOWER1" "$FOLLOWER2"; do
  ok=0
  for _ in $(seq 1 100); do
    rep=$(curl -sf "$f/admin/replication" || true)
    if echo "$rep" | grep -q "\"version\":$RPV" &&
      ! echo "$rep" | grep -q '"last_error"'; then ok=1; break; fi
    sleep 0.2
  done
  [ "$ok" = 1 ] || { echo "chaos-smoke: follower $f never re-synced after compaction" >&2; exit 1; }
done

# Chaos window: read-heavy load through the faulted router, with the
# primary hard-killed partway through. The error budget tolerates the
# failover blip; anything above it means retries are not healing reads.
"$DIR/seaload" -url "$ROUTER" -graph fb -scenario read-heavy \
  -qps 120 -duration 8s -warmup 1s -timeout 5s -max-error-rate 0.10 \
  >"$DIR/seaload.out" 2>&1 &
LOAD_PID=$!
sleep 3
kill -9 "$PRIM_PID"
PRIM_PID=''
if ! wait "$LOAD_PID"; then
  echo "chaos-smoke: seaload exceeded the chaos error budget" >&2
  cat "$DIR/seaload.out" >&2
  exit 1
fi
cat "$DIR/seaload.out"
grep -q 'within -max-error-rate' "$DIR/seaload.out"

# The injected faults must actually have exercised the retry path.
retries=$(curl -sf "$ROUTER/metrics" | grep '^searouter_read_retries_total' | awk '{print $2}')
[ "${retries:-0}" -ge 1 ] || {
  echo "chaos-smoke: no read retries recorded under 20% injected faults" >&2
  exit 1
}
echo "chaos-smoke: $retries read retries healed injected faults"
curl -sf "$ROUTER/metrics" | grep -q '^searouter_breaker_state{' || {
  echo "chaos-smoke: /metrics missing breaker state gauges" >&2
  exit 1
}

# The dead primary must have been replaced: the router reports healthy
# under a promoted follower, and writes land again.
promoted=''
for _ in $(seq 1 100); do
  health=$(curl -s "$ROUTER/healthz" || true)
  if echo "$health" | grep -q '"status":"ok"' &&
    ! echo "$health" | grep -q "\"primary\":\"$PRIMARY\""; then
    promoted=$(echo "$health" | grep -o '"primary":"[^"]*"' | head -1 | cut -d'"' -f4)
    break
  fi
  sleep 0.2
done
[ -n "$promoted" ] || { echo "chaos-smoke: no follower was promoted" >&2; exit 1; }
echo "chaos-smoke: promoted $promoted"
curl -sf -X POST "$ROUTER/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_edge\",\"u\":$X,\"v\":1}]}" \
  >"$DIR/failover-mutate.json" || {
  echo "chaos-smoke: write after failover failed" >&2
  exit 1
}
grep -q '"version":[0-9]' "$DIR/failover-mutate.json" || {
  echo "chaos-smoke: post-failover write carries no version" >&2
  cat "$DIR/failover-mutate.json" >&2
  exit 1
}

# Overload control: a node bounded to one in-flight computation, with an
# injected 2s delay holding that slot, must shed the second concurrent
# query fast with 429 + Retry-After instead of queueing it.
"$DIR/seaserve" -snapshot "$DIR/fb.snap" -name fb -addr "127.0.0.1:$OV" \
  -max-inflight 1 -faults 'engine.search=delay:2s,count:1' -faults-seed 3 &
OVER_PID=$!
wait_up "$OVERLOAD"
curl -sf "$OVERLOAD/search?graph=fb&q=1&k=2" >/dev/null &
HOLDER_PID=$!
sleep 0.5
code=$(curl -s -o "$DIR/shed.json" -D "$DIR/shed.hdr" -w '%{http_code}' \
  "$OVERLOAD/search?graph=fb&q=2&k=2")
[ "$code" = 429 ] || {
  echo "chaos-smoke: overloaded node answered $code, want 429" >&2
  cat "$DIR/shed.json" >&2
  exit 1
}
grep -qi '^retry-after:' "$DIR/shed.hdr" || {
  echo "chaos-smoke: shed response carries no Retry-After" >&2
  cat "$DIR/shed.hdr" >&2
  exit 1
}
wait "$HOLDER_PID" || { echo "chaos-smoke: the slow holder query failed" >&2; exit 1; }
echo "chaos-smoke: overloaded node shed with 429 + Retry-After"

# Post-chaos consistency: the same query through the router twice must
# return the same community and delta (metrics timings differ by nature).
extract() {
  grep -o '"community":\[[^]]*\]' "$1" || true
  grep -o '"delta":[0-9.e+-]*' "$1" || true
  grep -o '"size":[0-9]*' "$1" || true
}
curl -sf "$ROUTER/search?graph=fb&q=0&k=2" >"$DIR/post1.json"
curl -sf "$ROUTER/search?graph=fb&q=0&k=2" >"$DIR/post2.json"
extract "$DIR/post1.json" >"$DIR/post1.fields"
extract "$DIR/post2.json" >"$DIR/post2.fields"
[ -s "$DIR/post1.fields" ] || {
  echo "chaos-smoke: post-chaos /search returned no community fields" >&2
  cat "$DIR/post1.json" >&2
  exit 1
}
cmp -s "$DIR/post1.fields" "$DIR/post2.fields" || {
  echo "chaos-smoke: post-chaos answers diverged" >&2
  diff "$DIR/post1.fields" "$DIR/post2.fields" >&2 || true
  exit 1
}

echo "chaos-smoke OK"
