#!/bin/sh
# End-to-end observability smoke: boot seaserve on a packed snapshot, drive
# it with seaload (open-loop, read-heavy, 5s) and verify the SLO harness and
# the exposition agree that traffic happened — the seaload record carries a
# p99 and zero errors, and /metrics serves the per-stage latency histograms
# with populated counts.
#
# Expects: $SMOKE_DIR containing datagen/seacli/seaserve/seaload binaries
# plus fb.snap (packed snapshot). Port: $SMOKE_PORT (default 8974).
set -eu

DIR=${SMOKE_DIR:?set SMOKE_DIR to the directory with binaries and fb.snap}
PORT=${SMOKE_PORT:-8974}
BASE="http://127.0.0.1:$PORT"
QPS=${SMOKE_QPS:-100}

wait_up() {
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "load-smoke: server did not come up" >&2
  return 1
}

"$DIR/seaserve" -snapshot "$DIR/fb.snap" -name fb -addr "127.0.0.1:$PORT" &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT
wait_up

# 5s sustained open-loop run. seaload exits non-zero if any request errored,
# so a clean exit IS the zero-error assertion.
"$DIR/seaload" -url "$BASE" -scenario read-heavy -qps "$QPS" \
  -duration 5s -warmup 1s -out "$DIR/load.json"

# The record has percentiles: p50, p99 and p999 present and positive.
for pct in p50_us p99_us p999_us; do
  grep -q "\"$pct\": [0-9]" "$DIR/load.json" || {
    echo "load-smoke: $pct missing from seaload record" >&2; exit 1; }
done
grep -q '"errors": 0' "$DIR/load.json" || {
  echo "load-smoke: seaload record reports errors" >&2; exit 1; }

# The server-side histograms saw the same traffic: every latency family is
# exposed with le-bucketed series, and the whole-request family counted a
# nonzero number of requests.
curl -sf "$BASE/metrics" >"$DIR/metrics.txt"
for fam in sea_query_latency_seconds sea_query_stage_latency_seconds sea_mutation_stage_latency_seconds; do
  grep -q "# TYPE $fam histogram" "$DIR/metrics.txt" || {
    echo "load-smoke: /metrics lacks TYPE for $fam" >&2; exit 1; }
  grep -q "${fam}_bucket{graph=\"fb\".*le=" "$DIR/metrics.txt" || {
    echo "load-smoke: /metrics lacks le buckets for $fam" >&2; exit 1; }
  grep -q "${fam}_sum{graph=\"fb\"" "$DIR/metrics.txt" || {
    echo "load-smoke: /metrics lacks _sum for $fam" >&2; exit 1; }
done
TOTAL=$(grep -o 'sea_query_latency_seconds_count{graph="fb",outcome="[a-z]*"} [0-9]*' "$DIR/metrics.txt" \
  | awk '{s+=$2} END {print s}')
[ "${TOTAL:-0}" -gt 0 ] || {
  echo "load-smoke: /metrics histograms counted no requests" >&2; exit 1; }

# The trace ring saw them too.
curl -sf "$BASE/debug/trace?n=5" | grep -q '"total_ns"' || {
  echo "load-smoke: /debug/trace returned no spans" >&2; exit 1; }

kill -TERM $PID
wait $PID || { echo "load-smoke: seaserve exited non-zero on SIGTERM" >&2; exit 1; }
trap - EXIT
echo "load-smoke OK ($TOTAL requests histogrammed)"
