#!/bin/sh
# End-to-end zero-copy serving smoke: pack a compressed v2 snapshot, boot
# seaserve on it with the default -mmap serving path, verify /graphs reports
# the dataset as mapped, exercise /search and /admin/mutate against the
# mapped base, SIGTERM-drain, then boot a 4×-larger snapshot and verify the
# mapped boot wall-time stays scale-independent (the heap path grows
# linearly with the file; the mapped open touches only header + dictionary).
#
# Expects: $SMOKE_DIR containing datagen/seacli/seaserve binaries.
# Port: $SMOKE_PORT (default 8973).
set -eu

DIR=${SMOKE_DIR:?set SMOKE_DIR to the directory with datagen/seacli/seaserve}
PORT=${SMOKE_PORT:-8973}
BASE="http://127.0.0.1:$PORT"

wait_up() {
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "mmap-smoke: server did not come up" >&2
  return 1
}

# to_ms converts seaserve's rounded boot duration ("0s", "12ms", "1.002s")
# to integer milliseconds.
to_ms() {
  case "$1" in
    *ms) printf '%s\n' "$1" | sed 's/ms$//' | awk '{printf "%d\n", $1}' ;;
    *s)  printf '%s\n' "$1" | sed 's/s$//'  | awk '{printf "%d\n", $1 * 1000}' ;;
    *)   echo 0 ;;
  esac
}

# boot starts seaserve on snapshot $1 logging to $2 and waits for /healthz.
# The server is left running with its PID in $PID.
boot() {
  "$DIR/seaserve" -snapshot "$1" -name fb -addr "127.0.0.1:$PORT" >"$2" 2>&1 &
  PID=$!
  wait_up
  # Guard against a stale server answering wait_up while ours died on bind.
  kill -0 "$PID" 2>/dev/null || {
    echo "mmap-smoke: seaserve exited during boot:" >&2
    cat "$2" >&2
    exit 1
  }
}

# boot_ms extracts the "mounted in <dur>" boot time from log $1, in ms.
boot_ms() {
  to_ms "$(sed -n 's/.* mounted in \([^ ]*\) .*/\1/p' "$1")"
}

"$DIR/datagen" -dataset facebook -scale 0.5 -out "$DIR/small.txt"
"$DIR/datagen" -dataset facebook -scale 2.0 -out "$DIR/big.txt"
"$DIR/seacli" pack -load "$DIR/small.txt" -compress -out "$DIR/small.snap"
"$DIR/seacli" pack -load "$DIR/big.txt" -compress -out "$DIR/big.snap"

# --- Small snapshot: the full serving surface over a mapped base. ---
boot "$DIR/small.snap" "$DIR/small.log"
trap 'kill $PID 2>/dev/null || true' EXIT
SMALL_MS=$(boot_ms "$DIR/small.log")

grep -q 'mapped, ' "$DIR/small.log" || {
  echo "mmap-smoke: boot log does not report a mapped dataset" >&2
  cat "$DIR/small.log" >&2
  exit 1
}
curl -sf "$BASE/graphs" | grep -q '"mapped":true' || {
  echo "mmap-smoke: /graphs does not report mapped:true" >&2
  exit 1
}
curl -sf -X POST "$BASE/search" -d '{"q":0,"method":"structural","k":2}' >/dev/null

# Mutate over the read-only mapped base: deltas build a heap overlay, the
# mapped pages are never written.
X=$(curl -sf "$BASE/healthz" | grep -o '"nodes":[0-9]*' | grep -o '[0-9]*')
curl -sf -X POST "$BASE/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_node\",\"text\":[\"smoke\"]},{\"op\":\"add_edge\",\"u\":$X,\"v\":0},{\"op\":\"add_edge\",\"u\":$X,\"v\":1}]}" \
  | grep -q '"version":1'
curl -sf -X POST "$BASE/search" -d "{\"q\":$X,\"method\":\"structural\",\"k\":1}" \
  | grep -q "\"query\":$X"

# Graceful drain: SIGTERM must exit 0 (Catalog.Close unmaps retired mappings).
kill -TERM $PID
wait $PID || { echo "mmap-smoke: seaserve exited non-zero on SIGTERM" >&2; exit 1; }
trap - EXIT

# --- Big snapshot (4× the edges): mapped boot must not scale with it. ---
boot "$DIR/big.snap" "$DIR/big.log"
trap 'kill $PID 2>/dev/null || true' EXIT
BIG_MS=$(boot_ms "$DIR/big.log")
curl -sf -X POST "$BASE/search" -d '{"q":0,"method":"structural","k":2}' >/dev/null
kill -TERM $PID
wait $PID || true
trap - EXIT

# Scale-independence, with a noise floor: a 4× file may not cost more than
# 2× the small boot plus 100ms of scheduling slack.
LIMIT=$((SMALL_MS * 2 + 100))
if [ "$BIG_MS" -gt "$LIMIT" ]; then
  echo "mmap-smoke: mapped boot grew with graph size: ${SMALL_MS}ms -> ${BIG_MS}ms (limit ${LIMIT}ms)" >&2
  exit 1
fi
echo "mmap-smoke OK (boot ${SMALL_MS}ms small, ${BIG_MS}ms at 4x)"
