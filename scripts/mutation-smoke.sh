#!/bin/sh
# End-to-end live-update smoke: boot seaserve on a journaled snapshot, apply
# a mutation batch over HTTP, verify the new edge shows up in /search with
# zero engine hot-swaps, compact the journal, drain the server with SIGTERM
# (exit 0 required), reboot from the compacted snapshot and verify the same
# request answers byte-identically.
#
# Expects: $SMOKE_DIR containing datagen/seacli/seaserve binaries plus
# fb.snap (packed snapshot). Port: $SMOKE_PORT (default 8972).
set -eu

DIR=${SMOKE_DIR:?set SMOKE_DIR to the directory with binaries and fb.snap}
PORT=${SMOKE_PORT:-8972}
BASE="http://127.0.0.1:$PORT"

wait_up() {
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "mutation-smoke: server did not come up" >&2
  return 1
}

"$DIR/seaserve" -snapshot "$DIR/fb.snap" -journal "$DIR/fb.journal" \
  -name fb -addr "127.0.0.1:$PORT" &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT
wait_up

# Append a fresh node X (ID = current node count) and wire it to nodes 0
# and 1: a structural query at X fails before the mutation (X is not a node
# yet) and succeeds after, proving live visibility without any reload.
X=$(curl -sf "$BASE/healthz" | grep -o '"nodes":[0-9]*' | grep -o '[0-9]*')
Q="{\"q\":$X,\"method\":\"structural\",\"k\":1}"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/search" -d "$Q")
[ "$CODE" = 400 ] || { echo "mutation-smoke: pre-mutation search on node $X gave $CODE, want 400" >&2; exit 1; }

curl -sf -X POST "$BASE/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_node\",\"text\":[\"smoke\"]},{\"op\":\"add_edge\",\"u\":$X,\"v\":0},{\"op\":\"add_edge\",\"u\":$X,\"v\":1}]}" \
  | tee "$DIR/mutate.json"
echo
grep -q "\"new_nodes\":\[$X\]" "$DIR/mutate.json"
grep -q '"version":1' "$DIR/mutate.json"

# Mutation visible, and with zero hot-swaps (swaps stays 0, version is 1).
curl -sf -X POST "$BASE/search" -d "$Q" >"$DIR/live.json"
grep -q "\"query\":$X" "$DIR/live.json"
curl -sf "$BASE/graphs" | grep -q '"swaps":0'
curl -sf "$BASE/healthz" | grep -q '"version":1'

# Fold the journal into the snapshot.
curl -sf -X POST "$BASE/admin/compact" -d '{"graph":"fb"}' | grep -q '"batches_folded":1'

# Graceful drain: SIGTERM must exit 0.
kill -TERM $PID
wait $PID || { echo "mutation-smoke: seaserve exited non-zero on SIGTERM" >&2; exit 1; }
trap - EXIT

# Reboot from the compacted snapshot: nothing to replay, identical answer.
"$DIR/seaserve" -snapshot "$DIR/fb.snap" -journal "$DIR/fb.journal" \
  -name fb -addr "127.0.0.1:$PORT" &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT
wait_up
curl -sf -X POST "$BASE/search" -d "$Q" >"$DIR/reboot.json"
kill -TERM $PID
wait $PID || true
trap - EXIT

# Byte-identical re-query: same community, same delta, modulo the timing
# fields — strip "metrics" before comparing.
strip() { sed 's/"metrics":{[^}]*}//' "$1"; }
if [ "$(strip "$DIR/live.json")" != "$(strip "$DIR/reboot.json")" ]; then
  echo "mutation-smoke: live and post-compaction answers differ" >&2
  diff "$DIR/live.json" "$DIR/reboot.json" >&2 || true
  exit 1
fi
echo "mutation-smoke OK"
