#!/bin/sh
# End-to-end distributed-serving smoke: boot a journaled primary, two
# followers replicating from it, and a searouter fronting all three. Mutate
# through the router (write forwarding), wait for the followers to catch up,
# scatter a /batch across the read set and check followers serve their share,
# then kill -9 the primary and verify the router promotes a follower and
# keeps serving both reads and writes.
#
# Expects: $SMOKE_DIR containing datagen/seacli/seaserve/searouter binaries
# plus fb.snap (packed snapshot). Base port: $SMOKE_PORT (default 8975);
# uses SMOKE_PORT..SMOKE_PORT+3.
set -eu

DIR=${SMOKE_DIR:?set SMOKE_DIR to the directory with binaries and fb.snap}
P=${SMOKE_PORT:-8975}
F1=$((P + 1))
F2=$((P + 2))
RP=$((P + 3))
PRIMARY="http://127.0.0.1:$P"
FOLLOWER1="http://127.0.0.1:$F1"
FOLLOWER2="http://127.0.0.1:$F2"
ROUTER="http://127.0.0.1:$RP"

wait_up() {
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "router-smoke: $1 did not come up" >&2
  return 1
}

PRIM_PID='' FOL1_PID='' FOL2_PID='' ROUTER_PID=''
cleanup() {
  for pid in $PRIM_PID $FOL1_PID $FOL2_PID $ROUTER_PID; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

"$DIR/seaserve" -snapshot "$DIR/fb.snap" -journal "$DIR/fb.journal" \
  -name fb -addr "127.0.0.1:$P" &
PRIM_PID=$!
wait_up "$PRIMARY"

"$DIR/seaserve" -follow "$PRIMARY" -replica-dir "$DIR/f1" \
  -poll-every 200ms -addr "127.0.0.1:$F1" &
FOL1_PID=$!
"$DIR/seaserve" -follow "$PRIMARY" -replica-dir "$DIR/f2" \
  -poll-every 200ms -addr "127.0.0.1:$F2" &
FOL2_PID=$!
wait_up "$FOLLOWER1"
wait_up "$FOLLOWER2"

"$DIR/searouter" -addr "127.0.0.1:$RP" \
  -members "$PRIMARY,$FOLLOWER1,$FOLLOWER2" -rf 3 \
  -probe-every 300ms -fail-after 3 -shard-timeout 5s &
ROUTER_PID=$!
wait_up "$ROUTER"

# Writes forward to the primary: a mutate through the router must land there
# (X-Sea-Served-By) and bump the version.
X=$(curl -sf "$PRIMARY/healthz" | grep -o '"nodes":[0-9]*' | grep -o '[0-9]*')
curl -sf -D "$DIR/mutate.hdr" -X POST "$ROUTER/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_node\",\"text\":[\"smoke\"]},{\"op\":\"add_edge\",\"u\":$X,\"v\":0},{\"op\":\"add_edge\",\"u\":$X,\"v\":1}]}" \
  >"$DIR/mutate.json"
grep -qi "x-sea-served-by: $PRIMARY" "$DIR/mutate.hdr" || {
  echo "router-smoke: mutate not served by the primary" >&2
  cat "$DIR/mutate.hdr" >&2
  exit 1
}
grep -q '"version":1' "$DIR/mutate.json"

# Followers tail the journal and fold the batch through their own catalogs.
for f in "$FOLLOWER1" "$FOLLOWER2"; do
  ok=0
  for _ in $(seq 1 50); do
    if curl -sf "$f/healthz" | grep -q '"version":1'; then ok=1; break; fi
    sleep 0.2
  done
  [ "$ok" = 1 ] || { echo "router-smoke: follower $f never caught up" >&2; exit 1; }
done

# Scatter-gather: six queries round-robin across all three members, so each
# follower must serve some items — and the new node is visible on them.
curl -sf -X POST "$ROUTER/batch" -d \
  "{\"graph\":\"fb\",\"queries\":[$X,0,1,2,3,4],\"method\":\"structural\",\"k\":2}" \
  >"$DIR/batch.json"
if grep -q '"degraded"' "$DIR/batch.json"; then
  echo "router-smoke: /batch degraded with all members up" >&2
  cat "$DIR/batch.json" >&2
  exit 1
fi
for f in "$FOLLOWER1" "$FOLLOWER2"; do
  grep -q "\"served_by\":\"$f\"" "$DIR/batch.json" || {
    echo "router-smoke: follower $f served no /batch items" >&2
    cat "$DIR/batch.json" >&2
    exit 1
  }
done

# Hard-kill the primary: the router must notice, promote the most-caught-up
# follower, and report healthy again under the new primary.
kill -9 "$PRIM_PID"
promoted=''
for _ in $(seq 1 100); do
  health=$(curl -s "$ROUTER/healthz" || true)
  if echo "$health" | grep -q '"status":"ok"' &&
    ! echo "$health" | grep -q "\"primary\":\"$PRIMARY\""; then
    promoted=$(echo "$health" | grep -o '"primary":"[^"]*"' | head -1 | cut -d'"' -f4)
    break
  fi
  sleep 0.2
done
[ -n "$promoted" ] || { echo "router-smoke: no follower was promoted" >&2; exit 1; }
case "$promoted" in
"$FOLLOWER1" | "$FOLLOWER2") ;;
*) echo "router-smoke: promoted $promoted is not a follower" >&2; exit 1 ;;
esac
echo "router-smoke: promoted $promoted"

# Reads survive the failover…
curl -sf -X POST "$ROUTER/batch" -d \
  "{\"graph\":\"fb\",\"queries\":[$X,0],\"method\":\"structural\",\"k\":2}" \
  >"$DIR/failover-batch.json"
grep -q "\"query\":$X" "$DIR/failover-batch.json"

# …and writes land on the promoted follower.
curl -sf -X POST "$ROUTER/admin/mutate" -d \
  "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"add_edge\",\"u\":$X,\"v\":2}]}" \
  >"$DIR/failover-mutate.json"
grep -q '"version":2' "$DIR/failover-mutate.json"

echo "router-smoke OK"
