#!/bin/sh
# End-to-end group-commit smoke: boot seaserve on a journaled snapshot plus
# a follower replicating from it, fire a 32-writer mutation burst at
# /admin/mutate, and verify the staged write path end to end:
#
#   - every acknowledged mutation is journaled (no writer lost, none shed),
#   - the burst coalesced: the graph version (= flushes = engine
#     generations) is well below the acknowledged-mutation count, and the
#     journal holds exactly one batch record per flush,
#   - responses carry the batch observability fields (batch_size, flush_ns),
#   - the follower converges to the primary's version and answers a search
#     byte-identically,
#   - a SIGTERM drain (exit 0 required) followed by a reboot replays the
#     batch records to the same version and the same search answer.
#
# Expects: $SMOKE_DIR containing datagen/seacli/seaserve binaries plus
# fb.snap (packed snapshot). Ports: $SMOKE_PORT (default 8977) for the
# primary, $SMOKE_FOLLOWER_PORT (default 8978) for the follower.
set -eu

DIR=${SMOKE_DIR:?set SMOKE_DIR to the directory with binaries and fb.snap}
PORT=${SMOKE_PORT:-8977}
FPORT=${SMOKE_FOLLOWER_PORT:-8978}
BASE="http://127.0.0.1:$PORT"
FBASE="http://127.0.0.1:$FPORT"
WRITERS=32
ROUNDS=4

wait_up() {
  for _ in $(seq 1 50); do
    curl -sf "$1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "write-smoke: server at $1 did not come up" >&2
  return 1
}

# A small -commit-max-wait keeps coalescing deterministic even when the
# burst's writers land with a gap between them.
"$DIR/seaserve" -snapshot "$DIR/fb.snap" -journal "$DIR/fb.journal" \
  -name fb -addr "127.0.0.1:$PORT" -commit-max-wait 5ms &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT
wait_up "$BASE"

"$DIR/seaserve" -follow "$BASE" -replica-dir "$DIR/follower" \
  -poll-every 100ms -addr "127.0.0.1:$FPORT" &
FPID=$!
trap 'kill $PID $FPID 2>/dev/null || true' EXIT
wait_up "$FBASE"

# 32 concurrent writers, 4 single-delta mutations each. Unique text tags so
# no set_attr is a no-op. curl -sf fails the writer on any non-2xx (a shed
# would 429), and the FAIL marker surfaces it after the wait.
rm -f "$DIR"/mutate-*.json
WPIDS=""
for w in $(seq 1 $WRITERS); do
  (
    for i in $(seq 1 $ROUNDS); do
      curl -sf -X POST "$BASE/admin/mutate" \
        -d "{\"graph\":\"fb\",\"deltas\":[{\"op\":\"set_attr\",\"u\":$((w - 1)),\"text\":[\"smoke\",\"w$w-$i\"]}]}" \
        >>"$DIR/mutate-$w.json" || echo FAIL >>"$DIR/mutate-$w.json"
      echo >>"$DIR/mutate-$w.json"
    done
  ) &
  WPIDS="$WPIDS $!"
done
wait $WPIDS

if grep -q FAIL "$DIR"/mutate-*.json; then
  echo "write-smoke: a writer got a non-2xx response" >&2
  exit 1
fi
WANT=$((WRITERS * ROUNDS))
ACKED=$(cat "$DIR"/mutate-*.json | grep -c '"journaled":[0-9]')
[ "$ACKED" = "$WANT" ] || {
  echo "write-smoke: $ACKED/$WANT mutations acknowledged as journaled" >&2
  exit 1
}
# Batch observability must surface on the mutation responses.
grep -q '"batch_size":' "$DIR"/mutate-1.json
grep -q '"flush_ns":' "$DIR"/mutate-1.json

# Coalescing: the version counts flushes, so it must sit strictly below the
# acknowledged-mutation count; and the journal holds exactly one batch
# record (journal_batches) per flush, with the sequence number to match.
VERSION=$(curl -sf "$BASE/healthz" | grep -o '"version":[0-9]*' | head -1 | grep -o '[0-9]*$')
BATCHES=$(curl -sf "$BASE/graphs" | grep -o '"journal_batches":[0-9]*' | head -1 | grep -o '[0-9]*$')
SEQ=$(curl -sf "$BASE/graphs" | grep -o '"journal_seq":[0-9]*' | head -1 | grep -o '[0-9]*$')
[ "$VERSION" -ge 1 ] || { echo "write-smoke: no flush happened" >&2; exit 1; }
[ "$VERSION" -lt "$WANT" ] || {
  echo "write-smoke: version $VERSION >= $WANT acked mutations — no coalescing" >&2
  exit 1
}
[ "$BATCHES" = "$VERSION" ] || {
  echo "write-smoke: $BATCHES journal batch records for $VERSION flushes, want one per flush" >&2
  exit 1
}
[ "$SEQ" = "$VERSION" ] || {
  echo "write-smoke: journal_seq $SEQ != version $VERSION" >&2
  exit 1
}
# The commit histograms must pass through /metrics.
curl -sf "$BASE/metrics" | grep -q '^sea_commit_batch_size_count{graph="fb"}'
echo "write-smoke: $ACKED mutations in $VERSION flushes"

# Follower convergence: same version, then a byte-identical search answer
# (modulo the per-request timing fields).
Q='{"q":0,"method":"structural","k":3}'
for _ in $(seq 1 100); do
  FVERSION=$(curl -sf "$FBASE/healthz" | grep -o '"version":[0-9]*' | head -1 | grep -o '[0-9]*$') || FVERSION=0
  [ "$FVERSION" = "$VERSION" ] && break
  sleep 0.2
done
[ "$FVERSION" = "$VERSION" ] || {
  echo "write-smoke: follower stuck at version $FVERSION, primary at $VERSION" >&2
  exit 1
}
strip() { sed 's/"metrics":{[^}]*}//' "$1"; }
curl -sf -X POST "$BASE/search" -d "$Q" >"$DIR/primary.json"
curl -sf -X POST "$FBASE/search" -d "$Q" >"$DIR/follower.json"
if [ "$(strip "$DIR/primary.json")" != "$(strip "$DIR/follower.json")" ]; then
  echo "write-smoke: follower answer diverged from primary" >&2
  diff "$DIR/primary.json" "$DIR/follower.json" >&2 || true
  exit 1
fi

# Drain and reboot the primary: replaying the batch records must restore
# the exact version and the exact answer.
kill $FPID 2>/dev/null || true
kill -TERM $PID
wait $PID || { echo "write-smoke: seaserve exited non-zero on SIGTERM" >&2; exit 1; }
trap - EXIT

"$DIR/seaserve" -snapshot "$DIR/fb.snap" -journal "$DIR/fb.journal" \
  -name fb -addr "127.0.0.1:$PORT" &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT
wait_up "$BASE"
RVERSION=$(curl -sf "$BASE/healthz" | grep -o '"version":[0-9]*' | head -1 | grep -o '[0-9]*$')
[ "$RVERSION" = "$VERSION" ] || {
  echo "write-smoke: replay restored version $RVERSION, want $VERSION" >&2
  exit 1
}
curl -sf -X POST "$BASE/search" -d "$Q" >"$DIR/reboot.json"
kill -TERM $PID
wait $PID || true
trap - EXIT
if [ "$(strip "$DIR/primary.json")" != "$(strip "$DIR/reboot.json")" ]; then
  echo "write-smoke: post-replay answer diverged" >&2
  diff "$DIR/primary.json" "$DIR/reboot.json" >&2 || true
  exit 1
fi
echo "write-smoke OK"
