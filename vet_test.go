package sea

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestGoVetPasses pins the satellite requirement of the API redesign: the
// whole module — new Request/Searcher interfaces, deprecated wrappers and
// all — stays go vet clean. Running it inside the test suite keeps the
// check active even where the CI vet step is skipped.
func TestGoVetPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go vet in -short mode")
	}
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := exec.LookPath(goBin); err != nil {
		if goBin, err = exec.LookPath("go"); err != nil {
			t.Skip("go binary not found")
		}
	}
	cmd := exec.Command(goBin, "vet", "./...")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet ./... failed: %v\n%s", err, out)
	}
}
